//! The deterministic discrete-event simulator.
//!
//! Nodes exchange opaque byte frames over reliable, in-order session
//! channels; links add latency/serialization/retransmission delay. Every run
//! is a pure function of `(topology, nodes, seed)`, which is what lets DiCE
//! clone a snapshot and explore it in isolation with reproducible outcomes.

use std::cmp::Reverse;
use std::collections::{BTreeMap, BTreeSet, BinaryHeap, VecDeque};

use crate::buf::{BufPool, Payload, WireStats};
use crate::fault::FaultAction;
use crate::faults::{FaultVerdict, LinkFaultState, LinkFaults};
use crate::link::LinkParams;
use crate::node::{DownReason, Effect, Node, NodeApi, NodeId, SessionEvent};
use crate::rng::SimRng;
use crate::snapshot::{ShadowSnapshot, SnapshotId, SnapshotProgress, SnapshotState};
use crate::time::{SimDuration, SimTime};
use crate::topology::Topology;
use crate::trace::{Trace, TraceKind};

/// A frame traveling on a channel.
#[derive(Debug, Clone)]
pub(crate) enum Frame {
    /// Application payload. `quiet` frames do not reset the quiescence clock.
    Data { bytes: Payload, quiet: bool },
    /// Chandy–Lamport snapshot marker.
    Marker(SnapshotId),
}

#[derive(Debug)]
struct Flight {
    deliver_at: SimTime,
    frame: Frame,
}

#[derive(Debug, Default)]
struct Channel {
    queue: VecDeque<Flight>,
    last_arrival: SimTime,
    epoch: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SessionState {
    Down,
    Up,
}

/// The state slot of one node: either an owned (mutable) instance or a
/// checkpoint shared copy-on-write with a [`ShadowSnapshot`]. Shared
/// state materializes into an owned deep copy (`clone_node`) on first
/// mutable access, so clones instantiated from a snapshot only pay for
/// the nodes they actually drive.
enum NodeState {
    /// No node installed (or outside the snapshot scope of a clone).
    Empty,
    /// Checkpoint borrowed from a shadow snapshot; deep-copied on first
    /// mutable access.
    Shared(std::sync::Arc<dyn Node>),
    /// Exclusively owned, mutable in place.
    Owned(Box<dyn Node>),
}

impl NodeState {
    fn is_installed(&self) -> bool {
        !matches!(self, NodeState::Empty)
    }

    /// Read-only access without materializing a shared checkpoint.
    fn get(&self) -> Option<&dyn Node> {
        match self {
            NodeState::Empty => None,
            NodeState::Shared(a) => Some(a.as_ref()),
            NodeState::Owned(b) => Some(b.as_ref()),
        }
    }

    /// Take the node out for mutation, deep-copying a shared checkpoint
    /// (the copy-on-write point). Leaves `Empty` behind.
    fn take_owned(&mut self) -> Option<Box<dyn Node>> {
        match std::mem::replace(self, NodeState::Empty) {
            NodeState::Empty => None,
            NodeState::Shared(a) => Some(a.clone_node()),
            NodeState::Owned(b) => Some(b),
        }
    }

    /// Ensure the slot owns its node (deep-copying a shared checkpoint).
    fn materialize(&mut self) {
        if let NodeState::Shared(a) = self {
            *self = NodeState::Owned(a.clone_node());
        }
    }

    /// An `Arc` checkpoint of the current state: free for `Shared` slots,
    /// one `clone_node` for `Owned` ones.
    fn checkpoint(&self) -> Option<std::sync::Arc<dyn Node>> {
        match self {
            NodeState::Empty => None,
            NodeState::Shared(a) => Some(std::sync::Arc::clone(a)),
            NodeState::Owned(b) => Some(std::sync::Arc::from(b.clone_node())),
        }
    }
}

struct NodeSlot {
    node: NodeState,
    crashed: Option<String>,
    timer_gen: BTreeMap<u64, u64>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Ev {
    Start(NodeId),
    Deliver {
        src: NodeId,
        dst: NodeId,
        epoch: u64,
    },
    Timer {
        node: NodeId,
        token: u64,
        gen: u64,
    },
    SessionUp {
        a: NodeId,
        b: NodeId,
    },
    /// A dynamics-schedule action (partition, heal, churn) firing in-band.
    Fault(FaultAction),
}

#[derive(Debug, PartialEq, Eq)]
struct Queued {
    at: SimTime,
    seq: u64,
    ev: Ev,
}

impl Ord for Queued {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}
impl PartialOrd for Queued {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Simulator tuning knobs.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Delay before the first session establishment attempt.
    pub session_setup_base: SimDuration,
    /// Stagger between successive session establishments at start.
    pub session_setup_stagger: SimDuration,
    /// Automatic re-establishment delay after a session reset
    /// (`None` disables auto-reconnect).
    pub reconnect_delay: Option<SimDuration>,
    /// Capacity of the bounded trace ring.
    pub trace_capacity: usize,
    /// Recycle wire payload buffers through the simulator's [`BufPool`]
    /// (`false` hands out detached buffers and skips recycling; observable
    /// only in perf counters, never in simulation outcomes).
    pub payload_pool: bool,
    /// Merge runs of adjacent delivery events (same channel, same instant,
    /// consecutive heap order — the shape a back-to-back send burst
    /// produces) into one dispatch instead of one event per frame. The
    /// merged run delivers the same frames in the same order as unbatched
    /// processing, so outcomes are batching-invariant by construction.
    pub batch_delivery: bool,
    /// Serve checkpoints of nodes untouched since their last capture from a
    /// cached `Arc` instead of re-cloning them (delta snapshots). A cached
    /// checkpoint of an unmutated node is state-identical to a fresh
    /// `clone_node`, so the knob is observable only in perf counters
    /// ([`SnapshotStats`]), never in simulation outcomes.
    pub delta_snapshots: bool,
    /// Enable the channel-fidelity layer: data frames are subjected to the
    /// per-link [`LinkFaults`] model in `link_faults` (drop, duplication,
    /// bounded reordering, burst loss), sampled from dedicated per-link
    /// RNG streams. Off by default — the reliable in-order channel model.
    /// Chandy–Lamport markers are always exempt, and sampling is suspended
    /// while a consistent cut is in progress (the marker protocol requires
    /// FIFO channels).
    pub unreliable_links: bool,
    /// The fault profile applied when `unreliable_links` is on.
    pub link_faults: LinkFaults,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            session_setup_base: SimDuration::from_millis(1),
            session_setup_stagger: SimDuration::from_micros(500),
            reconnect_delay: Some(SimDuration::from_secs(5)),
            trace_capacity: 64 * 1024,
            payload_pool: true,
            batch_delivery: true,
            delta_snapshots: true,
            unreliable_links: false,
            link_faults: LinkFaults::default(),
        }
    }
}

/// Drainable counters for the delta-snapshot capture path and the dynamics
/// schedule, in the same take-and-zero style as [`WireStats`]
/// (see [`Simulator::take_snapshot_stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SnapshotStats {
    /// Bytes of node state actually captured by checkpoints (dirty or
    /// never-captured nodes; cache-served checkpoints contribute nothing).
    pub delta_bytes: u64,
    /// Nodes actually re-captured by checkpoints (cache misses).
    pub nodes_recaptured: u64,
    /// Nodes whose checkpoint was served from the delta cache.
    pub nodes_cached: u64,
    /// Dynamics-schedule actions applied (partitions, heals, joins, leaves).
    pub churn_events: u64,
}

impl SnapshotStats {
    /// Fold another drained sample into this one.
    pub fn absorb(&mut self, other: SnapshotStats) {
        self.delta_bytes += other.delta_bytes;
        self.nodes_recaptured += other.nodes_recaptured;
        self.nodes_cached += other.nodes_cached;
        self.churn_events += other.churn_events;
    }
}

/// Result of [`Simulator::run_until_quiet`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QuietOutcome {
    /// No (non-quiet) activity for the requested idle window.
    Quiescent,
    /// The time budget was exhausted first.
    TimedOut,
}

/// The deterministic discrete-event simulator.
pub struct Simulator {
    now: SimTime,
    queue: BinaryHeap<Reverse<Queued>>,
    seq: u64,
    nodes: Vec<NodeSlot>,
    topo: Topology,
    channels: BTreeMap<(NodeId, NodeId), Channel>,
    sessions: BTreeMap<(NodeId, NodeId), SessionState>,
    admin_down: BTreeSet<(NodeId, NodeId)>,
    link_rngs: BTreeMap<(NodeId, NodeId), SimRng>,
    /// Channel-fidelity streams, one per link direction — seeded from a
    /// *separate* parent than `link_rngs` so toggling `unreliable_links`
    /// never perturbs latency sampling (and vice versa).
    fault_rngs: BTreeMap<(NodeId, NodeId), SimRng>,
    /// Per-direction Gilbert–Elliott burst state.
    fault_state: BTreeMap<(NodeId, NodeId), LinkFaultState>,
    trace: Trace,
    last_activity: SimTime,
    started: bool,
    pristine: BTreeMap<NodeId, Box<dyn Node>>,
    snapshots: BTreeMap<SnapshotId, SnapshotState>,
    next_snapshot: u32,
    config: SimConfig,
    effects_scratch: Vec<Effect>,
    buf_pool: BufPool,
    wire: WireStats,
    /// Per-node dirty bits: set on first CoW materialization, message
    /// delivery, or any other mutable access since the node's last
    /// checkpoint; cleared when a checkpoint re-captures the node.
    dirty: Vec<bool>,
    /// Last checkpoint per node; a clean node's checkpoint is served from
    /// here, sharing the `Arc` with the previous shadow (the delta chain).
    ckpt_cache: Vec<Option<std::sync::Arc<dyn Node>>>,
    snap_stats: SnapshotStats,
}

impl Simulator {
    /// Create a simulator over `topo`. Nodes must be installed with
    /// [`Simulator::set_node`] before [`Simulator::start`].
    pub fn new(topo: Topology, seed: u64) -> Self {
        Self::with_config(topo, seed, SimConfig::default())
    }

    /// Like [`Simulator::new`] with explicit configuration.
    pub fn with_config(topo: Topology, seed: u64, config: SimConfig) -> Self {
        let mut rng = SimRng::seed_from_u64(seed);
        let mut fault_parent = SimRng::seed_from_u64(seed ^ Self::FAULT_STREAM_SALT);
        let mut channels = BTreeMap::new();
        let mut sessions = BTreeMap::new();
        let mut link_rngs = BTreeMap::new();
        let mut fault_rngs = BTreeMap::new();
        let mut fault_state = BTreeMap::new();
        for e in topo.edges() {
            channels.insert((e.a, e.b), Channel::default());
            channels.insert((e.b, e.a), Channel::default());
            sessions.insert(Self::skey(e.a, e.b), SessionState::Down);
            let label = ((e.a.0 as u64) << 32) | e.b.0 as u64;
            link_rngs.insert((e.a, e.b), rng.split(label));
            link_rngs.insert((e.b, e.a), rng.split(label ^ 0xFFFF_FFFF));
            fault_rngs.insert((e.a, e.b), fault_parent.split(label));
            fault_rngs.insert((e.b, e.a), fault_parent.split(label ^ 0xFFFF_FFFF));
            fault_state.insert((e.a, e.b), LinkFaultState::default());
            fault_state.insert((e.b, e.a), LinkFaultState::default());
        }
        let nodes: Vec<NodeSlot> = (0..topo.len())
            .map(|_| NodeSlot {
                node: NodeState::Empty,
                crashed: None,
                timer_gen: BTreeMap::new(),
            })
            .collect();
        let n = nodes.len();
        Simulator {
            now: SimTime::ZERO,
            queue: BinaryHeap::new(),
            seq: 0,
            nodes,
            trace: Trace::with_capacity(config.trace_capacity),
            topo,
            channels,
            sessions,
            admin_down: BTreeSet::new(),
            link_rngs,
            fault_rngs,
            fault_state,
            last_activity: SimTime::ZERO,
            started: false,
            pristine: BTreeMap::new(),
            snapshots: BTreeMap::new(),
            next_snapshot: 0,
            config,
            effects_scratch: Vec::new(),
            buf_pool: BufPool::new(),
            wire: WireStats::default(),
            dirty: vec![false; n],
            ckpt_cache: vec![None; n],
            snap_stats: SnapshotStats::default(),
        }
    }

    /// Toggle the wire-path perf knobs (payload pooling, batched delivery)
    /// on an existing simulator — used by clone pools right after
    /// [`Simulator::reset_from_shadow`], before any event is processed.
    /// Neither knob affects simulation outcomes, only perf counters.
    pub fn set_wire_config(&mut self, payload_pool: bool, batch_delivery: bool) {
        self.config.payload_pool = payload_pool;
        self.config.batch_delivery = batch_delivery;
    }

    /// Drain this simulator's wire-path counters (bytes sent, buffer-pool
    /// hits/misses, delivery batching), resetting them to zero.
    pub fn take_wire_stats(&mut self) -> WireStats {
        let mut out = self.wire;
        self.wire = WireStats::default();
        let (hits, misses) = self.buf_pool.take_counts();
        out.buf_hits = hits;
        out.buf_misses = misses;
        out
    }

    /// Toggle delta snapshots on an existing simulator (clone pools apply
    /// this right after [`Simulator::reset_from_shadow`], exactly like
    /// [`Simulator::set_wire_config`]). Turning the knob off drops the
    /// checkpoint cache; outcomes are unaffected either way.
    pub fn set_delta_snapshots(&mut self, on: bool) {
        self.config.delta_snapshots = on;
        if !on {
            for c in &mut self.ckpt_cache {
                *c = None;
            }
        }
    }

    /// Seed salt separating the channel-fidelity RNG parent from the
    /// latency RNG parent (both are split per link direction, in edge
    /// order, with the same labels).
    const FAULT_STREAM_SALT: u64 = 0x5EED_FA17;

    /// Toggle the channel-fidelity layer on an existing simulator (clone
    /// pools apply this right after [`Simulator::reset_from_shadow`],
    /// exactly like [`Simulator::set_wire_config`]). Unlike the wire-path
    /// knobs this one *does* change outcomes — that is its whole point —
    /// but identically for identical seeds: the fault streams are reseeded
    /// by construction and by `reset_from_shadow`, never by this setter.
    pub fn set_unreliable_links(&mut self, on: bool) {
        self.config.unreliable_links = on;
    }

    /// Replace the fault profile applied when `unreliable_links` is on.
    pub fn set_link_faults(&mut self, faults: LinkFaults) {
        self.config.link_faults = faults;
    }

    /// Drain this simulator's snapshot-delta and dynamics-schedule counters,
    /// resetting them to zero.
    pub fn take_snapshot_stats(&mut self) -> SnapshotStats {
        let out = self.snap_stats;
        self.snap_stats = SnapshotStats::default();
        out
    }

    /// Schedule a dynamics action to fire *inside* the event loop at
    /// absolute time `t` (clamped to now). Unlike
    /// [`crate::fault::FaultPlan::apply_due`], which the caller must pump,
    /// actions scheduled here fire during any `run_*` call — this is how
    /// [`crate::schedule::Schedule::install`] expresses churn and partition
    /// windows as ordinary simulation events.
    pub fn schedule_fault(&mut self, t: SimTime, action: FaultAction) {
        let at = t.max(self.now);
        self.schedule(at, Ev::Fault(action));
    }

    /// Apply one dynamics action immediately, counting it in
    /// [`SnapshotStats::churn_events`].
    pub(crate) fn apply_fault_now(&mut self, action: FaultAction) {
        self.snap_stats.churn_events += 1;
        match action {
            FaultAction::SessionReset(a, b) => self.inject_session_reset(a, b),
            FaultAction::LinkDown(a, b) => self.inject_link_down(a, b),
            FaultAction::LinkUp(a, b) => self.inject_link_up(a, b),
            FaultAction::NodeCrash(n) => self.inject_node_crash(n),
            FaultAction::NodeRestart(n) => self.inject_node_restart(n),
        }
    }

    fn skey(a: NodeId, b: NodeId) -> (NodeId, NodeId) {
        if a <= b {
            (a, b)
        } else {
            (b, a)
        }
    }

    /// Install the protocol node for `id`.
    pub fn set_node(&mut self, id: NodeId, node: Box<dyn Node>) {
        assert!(!self.started, "cannot install nodes after start");
        self.nodes[id.index()].node = NodeState::Owned(node);
        self.dirty[id.index()] = true;
    }

    /// The topology being simulated.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The execution trace.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Immutable access to a node (for checkers). Panics if never installed.
    /// Reads never materialize a shared checkpoint.
    pub fn node(&self, id: NodeId) -> &dyn Node {
        self.nodes[id.index()]
            .node
            .get()
            .expect("node not installed or currently executing")
    }

    /// Mutable access to a node (for operator-action injection).
    /// Materializes a shared checkpoint into an owned copy first.
    pub fn node_mut(&mut self, id: NodeId) -> &mut dyn Node {
        let slot = &mut self.nodes[id.index()];
        slot.node.materialize();
        self.dirty[id.index()] = true;
        match &mut slot.node {
            NodeState::Owned(b) => b.as_mut(),
            _ => panic!("node not installed or currently executing"),
        }
    }

    /// Whether `id` has crashed, and why.
    pub fn crashed(&self, id: NodeId) -> Option<&str> {
        self.nodes[id.index()].crashed.as_deref()
    }

    /// Whether the session between `a` and `b` is currently up.
    pub fn session_up(&self, a: NodeId, b: NodeId) -> bool {
        self.sessions.get(&Self::skey(a, b)) == Some(&SessionState::Up)
    }

    /// Begin the simulation: fire `on_start` on every node and schedule
    /// session establishment for every edge.
    pub fn start(&mut self) {
        assert!(!self.started, "start called twice");
        assert!(
            self.nodes.iter().all(|s| s.node.is_installed()),
            "all nodes must be installed before start"
        );
        self.started = true;
        for (i, slot) in self.nodes.iter().enumerate() {
            self.pristine
                .insert(NodeId(i as u32), slot.node.get().unwrap().clone_node());
        }
        for id in 0..self.nodes.len() {
            self.schedule(SimTime::ZERO, Ev::Start(NodeId(id as u32)));
        }
        let base = self.config.session_setup_base;
        let stagger = self.config.session_setup_stagger;
        let pairs: Vec<(NodeId, NodeId)> = self.topo.edges().iter().map(|e| (e.a, e.b)).collect();
        for (i, (a, b)) in pairs.into_iter().enumerate() {
            self.schedule(
                SimTime::ZERO + base + stagger.saturating_mul(i as u64),
                Ev::SessionUp { a, b },
            );
        }
    }

    fn schedule(&mut self, at: SimTime, ev: Ev) {
        debug_assert!(at >= self.now, "scheduling into the past");
        self.seq += 1;
        self.queue.push(Reverse(Queued {
            at,
            seq: self.seq,
            ev,
        }));
    }

    // ------------------------------------------------------------------
    // Event processing
    // ------------------------------------------------------------------

    /// Process the next event, if any. Returns `false` when the queue is empty.
    pub fn step(&mut self) -> bool {
        let Some(Reverse(q)) = self.queue.pop() else {
            return false;
        };
        debug_assert!(q.at >= self.now);
        self.now = q.at;
        match q.ev {
            Ev::Start(n) => self.run_start(n),
            Ev::Deliver { src, dst, epoch } => {
                // Batched delivery: a burst sent back-to-back on one
                // channel schedules a run of delivery events that are
                // adjacent in the heap (same instant, consecutive seq).
                // Merging exactly that run — and nothing more — amortizes
                // heap pops and dispatch while preserving the event
                // schedule bit-for-bit: no other event can order between
                // adjacent entries, and events scheduled by the handlers
                // get fresh (larger) seq numbers, so they run after the
                // merged run in both modes.
                let mut budget: u64 = 1;
                if self.config.batch_delivery {
                    while let Some(Reverse(next)) = self.queue.peek() {
                        let same_run = next.at == q.at
                            && matches!(
                                next.ev,
                                Ev::Deliver { src: s, dst: d, epoch: e }
                                    if s == src && d == dst && e == epoch
                            );
                        if !same_run {
                            break;
                        }
                        self.queue.pop();
                        budget += 1;
                    }
                }
                self.process_deliver(src, dst, epoch, budget);
            }
            Ev::Timer { node, token, gen } => self.process_timer(node, token, gen),
            Ev::SessionUp { a, b } => self.establish_session(a, b),
            Ev::Fault(action) => self.apply_fault_now(action),
        }
        true
    }

    /// Run until simulated time `t` (inclusive); afterwards `now() == t`
    /// unless the queue emptied earlier at a later time.
    pub fn run_until(&mut self, t: SimTime) {
        while let Some(Reverse(q)) = self.queue.peek() {
            if q.at > t {
                break;
            }
            self.step();
        }
        if self.now < t {
            self.now = t;
        }
    }

    /// Run for a duration from the current time.
    pub fn run_for(&mut self, d: SimDuration) {
        let t = self.now + d;
        self.run_until(t);
    }

    /// Run until there has been no (non-quiet) message activity for `idle`
    /// *measured from this call onward*, or until `max` elapses. Activity
    /// that ended before the call does not count: a system idle for an hour
    /// still waits one full `idle` window, so events already scheduled
    /// within that window (reconnects, timers) get processed.
    pub fn run_until_quiet(&mut self, idle: SimDuration, max: SimTime) -> QuietOutcome {
        let floor = self.now;
        loop {
            let quiet_at = self.last_activity.max(floor) + idle;
            let next = self.queue.peek().map(|Reverse(q)| q.at);
            match next {
                None => {
                    self.now = self.now.max(quiet_at).min(max);
                    return QuietOutcome::Quiescent;
                }
                Some(t_next) => {
                    if quiet_at <= t_next {
                        if quiet_at <= max {
                            self.now = self.now.max(quiet_at);
                            return QuietOutcome::Quiescent;
                        }
                        self.now = max;
                        return QuietOutcome::TimedOut;
                    }
                    if t_next > max {
                        self.now = max;
                        return QuietOutcome::TimedOut;
                    }
                    self.step();
                }
            }
        }
    }

    fn run_start(&mut self, n: NodeId) {
        self.with_node(n, |node, api| node.on_start(api));
    }

    fn process_timer(&mut self, n: NodeId, token: u64, gen: u64) {
        let slot = &self.nodes[n.index()];
        if slot.crashed.is_some() || slot.timer_gen.get(&token) != Some(&gen) {
            return;
        }
        self.trace
            .push(self.now, TraceKind::TimerFired { node: n, token });
        self.with_node(n, |node, api| node.on_timer(token, api));
    }

    /// Deliver up to `budget` frames on `src -> dst` that have matured at
    /// the current instant.
    ///
    /// `budget` is the number of delivery events merged into this call by
    /// [`Simulator::step`] (1 with `batch_delivery` off). Frames and
    /// delivery events are 1:1 within an epoch, so delivering one matured
    /// frame per merged event reproduces the unbatched execution exactly —
    /// same frames, same order, same handler invocations — while paying
    /// one dispatch for the whole run.
    ///
    /// The channel is re-fetched and its epoch re-checked every iteration:
    /// a handler may reset the session mid-batch, which clears the queue
    /// and must stop the drain (the remaining merged events would have
    /// been stale no-ops unbatched). Frames stay queued until their turn
    /// so a teardown can still discard them (and snapshots never observe
    /// them).
    fn process_deliver(&mut self, src: NodeId, dst: NodeId, epoch: u64, budget: u64) {
        let mut delivered: u64 = 0;
        while delivered < budget {
            let ch = self.channels.get_mut(&(src, dst)).expect("unknown channel");
            if ch.epoch != epoch {
                break; // stale delivery after a session reset
            }
            match ch.queue.front() {
                Some(front) if front.deliver_at == self.now => {}
                _ => break, // nothing matured (queue cleared by a teardown)
            }
            let flight = ch.queue.pop_front().expect("front vanished");
            match flight.frame {
                Frame::Data { bytes, quiet } => {
                    self.snapshot_observe_data(src, dst, bytes.as_slice());
                    if self.nodes[dst.index()].crashed.is_none() {
                        if !quiet {
                            self.last_activity = self.now;
                        }
                        self.trace.push(
                            self.now,
                            TraceKind::Delivered {
                                src,
                                dst,
                                bytes: bytes.len(),
                            },
                        );
                        self.with_node(dst, |node, api| {
                            node.on_message(src, bytes.as_slice(), api)
                        });
                    }
                    if self.config.payload_pool {
                        self.buf_pool.recycle(bytes);
                    }
                }
                Frame::Marker(id) => self.snapshot_on_marker(id, src, dst),
            }
            delivered += 1;
        }
        if delivered > 0 {
            self.wire.batches += 1;
            if delivered > self.wire.max_batch {
                self.wire.max_batch = delivered;
            }
        }
    }

    /// Run `f` on node `n` with a fresh effect buffer, then apply effects.
    /// This is the copy-on-write point: a checkpoint shared with a shadow
    /// snapshot is deep-copied here, on the node's first mutation.
    fn with_node(&mut self, n: NodeId, f: impl FnOnce(&mut dyn Node, &mut NodeApi<'_>)) {
        if self.nodes[n.index()].crashed.is_some() {
            return;
        }
        let mut node = match self.nodes[n.index()].node.take_owned() {
            Some(node) => node,
            None => return,
        };
        // Dirty from the moment the handler can mutate: the first CoW
        // materialization and every subsequent delivery land here.
        self.dirty[n.index()] = true;
        let mut effects = std::mem::take(&mut self.effects_scratch);
        effects.clear();
        {
            let bufs = self.config.payload_pool.then_some(&self.buf_pool);
            let mut api = NodeApi::new(n, self.now, &mut effects, bufs);
            f(node.as_mut(), &mut api);
        }
        self.nodes[n.index()].node = NodeState::Owned(node);
        self.apply_effects(n, &mut effects);
        self.effects_scratch = effects;
    }

    fn apply_effects(&mut self, n: NodeId, effects: &mut Vec<Effect>) {
        for eff in effects.drain(..) {
            match eff {
                Effect::Send { to, data } => self.channel_send(n, to, data, false),
                Effect::SendQuiet { to, data } => self.channel_send(n, to, data, true),
                Effect::SetTimer { delay, token } => {
                    let gen = self.nodes[n.index()]
                        .timer_gen
                        .entry(token)
                        .and_modify(|g| *g += 1)
                        .or_insert(1);
                    let gen = *gen;
                    let at = self.now + delay;
                    self.schedule(
                        at,
                        Ev::Timer {
                            node: n,
                            token,
                            gen,
                        },
                    );
                }
                Effect::CancelTimer { token } => {
                    self.nodes[n.index()]
                        .timer_gen
                        .entry(token)
                        .and_modify(|g| *g += 1)
                        .or_insert(1);
                }
                Effect::ResetSession { peer } => {
                    self.teardown_session(n, peer, DownReason::Reset, true);
                }
                Effect::Trace { tag, detail } => {
                    self.trace.push(
                        self.now,
                        TraceKind::Node {
                            node: n,
                            tag,
                            detail,
                        },
                    );
                }
                Effect::Crash { reason } => self.crash_node(n, reason),
            }
        }
    }

    // ------------------------------------------------------------------
    // Channels and sessions
    // ------------------------------------------------------------------

    fn link_params(&self, a: NodeId, b: NodeId) -> Option<&LinkParams> {
        self.topo.edge_between(a, b).map(|e| &e.params)
    }

    fn channel_send(&mut self, src: NodeId, dst: NodeId, bytes: Payload, quiet: bool) {
        if !self.session_up(src, dst) {
            // Session down: transport rejects the write, data is lost (the
            // storage still goes back to the pool).
            if self.config.payload_pool {
                self.buf_pool.recycle(bytes);
            }
            return;
        }
        self.send_frame(src, dst, Frame::Data { bytes, quiet });
    }

    pub(crate) fn send_frame(&mut self, src: NodeId, dst: NodeId, frame: Frame) {
        let size = match &frame {
            Frame::Data { bytes, .. } => bytes.len(),
            Frame::Marker(_) => 32,
        };
        let is_data = matches!(&frame, Frame::Data { .. });
        if is_data {
            self.wire.wire_bytes += size as u64;
        }
        let quietness = matches!(&frame, Frame::Data { quiet: true, .. } | Frame::Marker(_));
        let params = self
            .link_params(src, dst)
            .cloned()
            .expect("send on non-adjacent pair");
        let rng = self
            .link_rngs
            .get_mut(&(src, dst))
            .expect("missing link rng");
        let (delay, retries) = params.delay_and_retries_for(size, rng);
        self.wire.link_retransmits += retries as u64;
        // Channel-fidelity layer: sample the per-link fault model for data
        // frames. Markers are exempt, and sampling is suspended while a
        // consistent cut is in progress — Chandy–Lamport is only sound over
        // FIFO channels, so the cut window runs at full fidelity. The
        // fault streams are separate from the latency streams, so the
        // knob's off state is byte-identical to the pre-fault simulator.
        let faulty = self.config.unreliable_links
            && is_data
            && self.snapshots.is_empty()
            && !self.config.link_faults.is_noop();
        let verdict = if faulty {
            let faults = self.config.link_faults;
            let frng = self
                .fault_rngs
                .get_mut(&(src, dst))
                .expect("missing fault rng");
            let fstate = self
                .fault_state
                .get_mut(&(src, dst))
                .expect("missing fault state");
            faults.sample(fstate, frng)
        } else {
            FaultVerdict::default()
        };
        if !quietness {
            self.last_activity = self.now;
        }
        self.trace.push(
            self.now,
            TraceKind::Sent {
                src,
                dst,
                bytes: size,
            },
        );
        if verdict.dropped {
            self.wire.frames_dropped += 1;
            if let Frame::Data { bytes, .. } = frame {
                if self.config.payload_pool {
                    self.buf_pool.recycle(bytes);
                }
            }
            return;
        }
        let dup = verdict.duplicated.then(|| frame.clone());
        let mut arrival = self.now + delay;
        if let Some(extra) = verdict.extra_delay {
            self.wire.frames_reordered += 1;
            arrival += extra;
        }
        self.enqueue_flight(src, dst, frame, arrival, faulty);
        if let Some(copy) = dup {
            self.wire.frames_duplicated += 1;
            self.enqueue_flight(src, dst, copy, self.now + delay + verdict.dup_lag, faulty);
        }
    }

    /// Enqueue one frame on `src -> dst` arriving at `arrival` and schedule
    /// its delivery event. With `relaxed` off (the reliable channel model)
    /// arrivals are clamped monotone, so `push_back` keeps the queue sorted
    /// by `deliver_at`; with `relaxed` on (fault layer live) the clamp is
    /// skipped — that is what lets frames overtake each other — and the
    /// frame is instead inserted in `deliver_at` order, stably after equal
    /// instants, preserving `process_deliver`'s front-matured invariant.
    /// `last_arrival` stays the running maximum either way, so an exempt
    /// marker sent later is always clamped behind every data frame already
    /// in flight.
    fn enqueue_flight(
        &mut self,
        src: NodeId,
        dst: NodeId,
        frame: Frame,
        arrival: SimTime,
        relaxed: bool,
    ) {
        let ch = self.channels.get_mut(&(src, dst)).expect("unknown channel");
        let arrival = if relaxed {
            arrival
        } else {
            arrival.max(ch.last_arrival)
        };
        ch.last_arrival = ch.last_arrival.max(arrival);
        let epoch = ch.epoch;
        let flight = Flight {
            deliver_at: arrival,
            frame,
        };
        if relaxed {
            let pos = ch.queue.partition_point(|f| f.deliver_at <= arrival);
            ch.queue.insert(pos, flight);
        } else {
            ch.queue.push_back(flight);
        }
        self.schedule(arrival, Ev::Deliver { src, dst, epoch });
    }

    fn establish_session(&mut self, a: NodeId, b: NodeId) {
        let key = Self::skey(a, b);
        if self.admin_down.contains(&key) {
            return;
        }
        if self.nodes[a.index()].crashed.is_some() || self.nodes[b.index()].crashed.is_some() {
            return;
        }
        if self.sessions.get(&key) == Some(&SessionState::Up) {
            return;
        }
        self.sessions.insert(key, SessionState::Up);
        self.trace.push(self.now, TraceKind::SessionUp { a, b });
        self.with_node(a, |node, api| node.on_session(b, SessionEvent::Up, api));
        self.with_node(b, |node, api| node.on_session(a, SessionEvent::Up, api));
    }

    fn teardown_session(&mut self, a: NodeId, b: NodeId, reason: DownReason, reconnect: bool) {
        let key = Self::skey(a, b);
        if self.sessions.get(&key) != Some(&SessionState::Up) {
            return;
        }
        self.sessions.insert(key, SessionState::Down);
        self.trace
            .push(self.now, TraceKind::SessionDown { a, b, reason });
        // Drop in-flight data in both directions; bump epochs so queued
        // delivery events become no-ops.
        for dir in [(a, b), (b, a)] {
            if let Some(ch) = self.channels.get_mut(&dir) {
                let lost_markers: Vec<SnapshotId> = ch
                    .queue
                    .iter()
                    .filter_map(|f| match f.frame {
                        Frame::Marker(id) => Some(id),
                        _ => None,
                    })
                    .collect();
                ch.queue.clear();
                ch.epoch += 1;
                ch.last_arrival = self.now;
                for id in lost_markers {
                    if let Some(s) = self.snapshots.get_mut(&id) {
                        s.fail(format!("marker lost on session reset {a}-{b}"));
                    }
                }
            }
        }
        // Any snapshot still counting on these channels fails (the channel
        // state it was recording is gone).
        for s in self.snapshots.values_mut() {
            s.channel_reset(a, b);
        }
        if self.nodes[a.index()].crashed.is_none() {
            self.with_node(a, |node, api| {
                node.on_session(b, SessionEvent::Down(reason), api)
            });
        }
        if self.nodes[b.index()].crashed.is_none() {
            self.with_node(b, |node, api| {
                node.on_session(a, SessionEvent::Down(reason), api)
            });
        }
        if reconnect {
            if let Some(d) = self.config.reconnect_delay {
                let at = self.now + d;
                self.schedule(at, Ev::SessionUp { a, b });
            }
        }
    }

    fn crash_node(&mut self, n: NodeId, reason: String) {
        if self.nodes[n.index()].crashed.is_some() {
            return;
        }
        self.nodes[n.index()].crashed = Some(reason.clone());
        self.dirty[n.index()] = true;
        self.ckpt_cache[n.index()] = None;
        self.trace
            .push(self.now, TraceKind::NodeCrashed { node: n, reason });
        let peers: Vec<NodeId> = self.topo.neighbors(n);
        for m in peers {
            self.teardown_session(n, m, DownReason::PeerCrash, false);
        }
        for s in self.snapshots.values_mut() {
            s.node_crashed(n);
        }
    }

    // ------------------------------------------------------------------
    // Fault-injection entry points (used by `fault::FaultPlan`)
    // ------------------------------------------------------------------

    /// Forcibly reset the session between `a` and `b` (operator action /
    /// fault). Auto-reconnect applies if configured.
    pub fn inject_session_reset(&mut self, a: NodeId, b: NodeId) {
        self.teardown_session(a, b, DownReason::Reset, true);
    }

    /// Take the link down administratively; the session drops and will not
    /// re-establish until [`Simulator::inject_link_up`].
    pub fn inject_link_down(&mut self, a: NodeId, b: NodeId) {
        self.admin_down.insert(Self::skey(a, b));
        self.teardown_session(a, b, DownReason::LinkFailure, false);
    }

    /// Re-enable a link and schedule session re-establishment.
    pub fn inject_link_up(&mut self, a: NodeId, b: NodeId) {
        self.admin_down.remove(&Self::skey(a, b));
        let at = self.now + SimDuration::from_millis(1);
        self.schedule(at, Ev::SessionUp { a, b });
    }

    /// Crash a node (fail-stop).
    pub fn inject_node_crash(&mut self, n: NodeId) {
        self.crash_node(n, "fault injection".to_string());
    }

    /// Restart a crashed node from its pristine (start-of-run) state and
    /// schedule session re-establishment with its neighbors.
    pub fn inject_node_restart(&mut self, n: NodeId) {
        if self.nodes[n.index()].crashed.is_none() {
            return;
        }
        let fresh = self
            .pristine
            .get(&n)
            .expect("restart before start()")
            .clone_node();
        self.nodes[n.index()] = NodeSlot {
            node: NodeState::Owned(fresh),
            crashed: None,
            timer_gen: BTreeMap::new(),
        };
        // The rejoined node is a brand-new state: any cached checkpoint is
        // stale and the next cut must re-capture it.
        self.dirty[n.index()] = true;
        self.ckpt_cache[n.index()] = None;
        self.with_node(n, |node, api| node.on_start(api));
        let peers = self.topo.neighbors(n);
        for (i, m) in peers.into_iter().enumerate() {
            let at = self.now
                + self.config.session_setup_base
                + self.config.session_setup_stagger.saturating_mul(i as u64);
            self.schedule(at, Ev::SessionUp { a: n, b: m });
        }
    }

    /// Invoke arbitrary code on a node with a live effect API — the hook for
    /// operator actions (configuration changes) in experiments. Effects are
    /// applied exactly as if requested from a message handler.
    pub fn invoke_node(&mut self, id: NodeId, f: impl FnOnce(&mut dyn Node, &mut NodeApi<'_>)) {
        self.with_node(id, f);
    }

    /// Deliver `bytes` to `dst` *right now*, as if received from `src`,
    /// without traversing the channel. This is DiCE's exploration entry
    /// point: subjecting a node to a generated input.
    pub fn deliver_direct(&mut self, src: NodeId, dst: NodeId, bytes: &[u8]) {
        self.last_activity = self.now;
        self.trace.push(
            self.now,
            TraceKind::Delivered {
                src,
                dst,
                bytes: bytes.len(),
            },
        );
        self.with_node(dst, |node, api| node.on_message(src, bytes, api));
    }

    // ------------------------------------------------------------------
    // Snapshots
    // ------------------------------------------------------------------

    /// The delta-capture path: checkpoint node `n`, serving clean nodes
    /// from the cached `Arc` of their previous capture. A cache hit shares
    /// the node state with the prior shadow (the delta chain); a miss
    /// re-clones, refreshes the cache, and clears the dirty bit. With
    /// `delta_snapshots` off every call is a plain re-capture.
    fn checkpoint_node(&mut self, n: NodeId) -> Option<std::sync::Arc<dyn Node>> {
        let idx = n.index();
        if self.config.delta_snapshots && !self.dirty[idx] {
            if let Some(cached) = &self.ckpt_cache[idx] {
                self.snap_stats.nodes_cached += 1;
                return Some(std::sync::Arc::clone(cached));
            }
        }
        let arc = self.nodes[idx].node.checkpoint()?;
        self.snap_stats.nodes_recaptured += 1;
        self.snap_stats.delta_bytes += arc.state_size() as u64;
        if self.config.delta_snapshots {
            self.ckpt_cache[idx] = Some(std::sync::Arc::clone(&arc));
            self.dirty[idx] = false;
        }
        Some(arc)
    }

    /// Initiate a Chandy–Lamport consistent snapshot from `initiator`.
    /// Markers flow through the same FIFO channels as data; poll with
    /// [`Simulator::poll_snapshot`] after running the sim forward.
    pub fn start_snapshot(&mut self, initiator: NodeId) -> SnapshotId {
        let id = SnapshotId(self.next_snapshot);
        self.next_snapshot += 1;

        // Scope: the session-connected component of the initiator.
        let mut member = BTreeSet::new();
        let mut stack = vec![initiator];
        member.insert(initiator);
        while let Some(n) = stack.pop() {
            for m in self.topo.neighbors(n) {
                if self.session_up(n, m) && member.insert(m) {
                    stack.push(m);
                }
            }
        }
        let mut chans = BTreeSet::new();
        for &n in &member {
            for m in self.topo.neighbors(n) {
                if member.contains(&m) && self.session_up(n, m) {
                    chans.insert((n, m));
                    chans.insert((m, n));
                }
            }
        }
        let sessions_up: Vec<(NodeId, NodeId)> = self
            .sessions
            .iter()
            .filter(|(_, s)| **s == SessionState::Up)
            .map(|(k, _)| *k)
            .collect();
        let mut st = SnapshotState::new(id, initiator, member, chans, sessions_up, self.now);

        // Record the initiator immediately and emit markers on its outgoing
        // channels.
        let init_clone = self.checkpoint_node(initiator).expect("initiator missing");
        st.record_node(initiator, init_clone);
        let outgoing: Vec<NodeId> = st.outgoing_of(initiator);
        self.snapshots.insert(id, st);
        for m in outgoing {
            self.trace.push(
                self.now,
                TraceKind::MarkerSent {
                    src: initiator,
                    dst: m,
                    snapshot: id.0,
                },
            );
            self.send_frame(initiator, m, Frame::Marker(id));
        }
        self.finalize_snapshot_if_done(id);
        id
    }

    fn snapshot_on_marker(&mut self, id: SnapshotId, src: NodeId, dst: NodeId) {
        let first_marker = match self.snapshots.get(&id) {
            Some(st) if !st.is_terminal() => !st.is_marked(dst),
            _ => return,
        };
        if first_marker {
            // Capture before re-borrowing the snapshot table: the delta
            // path needs `&mut self` for its cache and counters.
            let clone = self.checkpoint_node(dst);
            let Some(st) = self.snapshots.get_mut(&id) else {
                return;
            };
            let clone = match clone {
                Some(n) => n,
                None => {
                    st.fail(format!("node {dst} unavailable at marker"));
                    return;
                }
            };
            st.record_node(dst, clone);
            st.channel_done_empty(src, dst);
            let outgoing = st.outgoing_of(dst);
            for m in outgoing {
                self.trace.push(
                    self.now,
                    TraceKind::MarkerSent {
                        src: dst,
                        dst: m,
                        snapshot: id.0,
                    },
                );
                self.send_frame(dst, m, Frame::Marker(id));
            }
        } else {
            let st = self.snapshots.get_mut(&id).unwrap();
            st.channel_done_recorded(src, dst);
        }
        self.finalize_snapshot_if_done(id);
    }

    fn snapshot_observe_data(&mut self, src: NodeId, dst: NodeId, bytes: &[u8]) {
        for st in self.snapshots.values_mut() {
            st.observe(src, dst, bytes);
        }
    }

    fn finalize_snapshot_if_done(&mut self, id: SnapshotId) {
        if let Some(st) = self.snapshots.get_mut(&id) {
            if st.all_done() {
                self.trace
                    .push(self.now, TraceKind::SnapshotComplete { snapshot: id.0 });
                st.complete();
            }
        }
    }

    /// Poll a snapshot's progress; `Complete` yields the shadow snapshot and
    /// removes it from the in-progress table.
    pub fn poll_snapshot(&mut self, id: SnapshotId) -> SnapshotProgress {
        let Some(st) = self.snapshots.get(&id) else {
            return SnapshotProgress::Failed("unknown snapshot".to_string());
        };
        if st.is_complete() {
            let st = self.snapshots.remove(&id).unwrap();
            SnapshotProgress::Complete(Box::new(st.into_shadow()))
        } else if let Some(err) = st.failure() {
            let err = err.to_string();
            self.snapshots.remove(&id);
            SnapshotProgress::Failed(err)
        } else {
            SnapshotProgress::InProgress
        }
    }

    /// God-mode snapshot: clone every node and channel instantly, with no
    /// marker protocol. Used (a) as the per-input cloning primitive once a
    /// consistent snapshot exists and (b) as the *uncoordinated* baseline in
    /// the snapshot-consistency ablation. With delta snapshots on, nodes
    /// untouched since the previous capture share their `Arc` with it.
    pub fn instant_snapshot(&mut self) -> ShadowSnapshot {
        let mut nodes = BTreeMap::new();
        for i in 0..self.nodes.len() {
            if self.nodes[i].crashed.is_none() {
                if let Some(n) = self.checkpoint_node(NodeId(i as u32)) {
                    nodes.insert(NodeId(i as u32), n);
                }
            }
        }
        let mut in_flight = Vec::new();
        for ((src, dst), ch) in &self.channels {
            let msgs: Vec<Vec<u8>> = ch
                .queue
                .iter()
                .filter_map(|f| match &f.frame {
                    Frame::Data { bytes, .. } => Some(bytes.as_slice().to_vec()),
                    Frame::Marker(_) => None,
                })
                .collect();
            if !msgs.is_empty() {
                in_flight.push((*src, *dst, msgs));
            }
        }
        let sessions_up = self
            .sessions
            .iter()
            .filter(|(_, s)| **s == SessionState::Up)
            .map(|(k, _)| *k)
            .collect();
        ShadowSnapshot::new(self.now, nodes, in_flight, sessions_up)
    }

    /// Crash reason used for nodes that were not part of a snapshot's scope
    /// when instantiating a clone — not a real crash; checkers must ignore it.
    pub const OUTSIDE_SNAPSHOT: &'static str = "outside snapshot scope";

    /// Build a runnable simulator from a shadow snapshot: checkpoints
    /// shared copy-on-write, sessions silently restored, in-flight
    /// messages re-enqueued. The clone starts at the snapshot's base time
    /// and shares no *mutable* state with the live system — shared node
    /// checkpoints are deep-copied the moment the clone first mutates
    /// them.
    pub fn from_shadow(shadow: &ShadowSnapshot, topo: &Topology, seed: u64) -> Simulator {
        let mut sim = Simulator::new(topo.clone(), seed);
        sim.bind_shadow(shadow);
        sim
    }

    /// Rebind this simulator to a (possibly different) shadow snapshot of
    /// the **same topology**, reusing every allocation the simulator
    /// already holds — channel queues, the event heap, the trace ring,
    /// node slots — instead of rebuilding them as
    /// [`Simulator::from_shadow`] does. The result is state-for-state
    /// indistinguishable from a fresh `from_shadow(shadow, topo, seed)`
    /// (locked in by a unit test), which is what lets clone pools reuse
    /// simulators across validated inputs without perturbing determinism.
    ///
    /// Panics (debug) if the shadow's node space does not fit this
    /// simulator's topology.
    pub fn reset_from_shadow(&mut self, shadow: &ShadowSnapshot, seed: u64) {
        debug_assert!(
            shadow
                .nodes()
                .keys()
                .all(|id| id.index() < self.nodes.len()),
            "shadow does not match the simulator's topology"
        );
        // Reseed the per-link randomness streams exactly as construction
        // does: one parent stream split twice per edge, in edge order —
        // and likewise for the channel-fidelity streams from their salted
        // parent, with the burst state returned to good.
        let mut rng = SimRng::seed_from_u64(seed);
        let mut fault_parent = SimRng::seed_from_u64(seed ^ Self::FAULT_STREAM_SALT);
        for e in self.topo.edges() {
            let label = ((e.a.0 as u64) << 32) | e.b.0 as u64;
            self.link_rngs.insert((e.a, e.b), rng.split(label));
            self.link_rngs
                .insert((e.b, e.a), rng.split(label ^ 0xFFFF_FFFF));
            self.fault_rngs
                .insert((e.a, e.b), fault_parent.split(label));
            self.fault_rngs
                .insert((e.b, e.a), fault_parent.split(label ^ 0xFFFF_FFFF));
        }
        for s in self.fault_state.values_mut() {
            *s = LinkFaultState::default();
        }
        // Channel structures survive; their contents do not.
        for ch in self.channels.values_mut() {
            ch.queue.clear();
            ch.last_arrival = SimTime::ZERO;
            ch.epoch = 0;
        }
        for s in self.sessions.values_mut() {
            *s = SessionState::Down;
        }
        self.queue.clear();
        self.seq = 0;
        self.admin_down.clear();
        self.trace.clear();
        self.pristine.clear();
        self.snapshots.clear();
        self.next_snapshot = 0;
        for slot in self.nodes.iter_mut() {
            slot.node = NodeState::Empty;
            slot.crashed = None;
            slot.timer_gen.clear();
        }
        for d in &mut self.dirty {
            *d = false;
        }
        for c in &mut self.ckpt_cache {
            *c = None;
        }
        self.snap_stats = SnapshotStats::default();
        self.started = true;
        self.bind_shadow(shadow);
    }

    /// Shared tail of [`Simulator::from_shadow`] and
    /// [`Simulator::reset_from_shadow`]: install the shadow's checkpoints
    /// (copy-on-write), restore sessions, re-enqueue in-flight traffic.
    /// Expects empty node slots, empty channels, and a started simulator.
    fn bind_shadow(&mut self, shadow: &ShadowSnapshot) {
        self.now = shadow.base_time();
        self.last_activity = shadow.base_time();
        self.started = true;
        for (id, node) in shadow.nodes() {
            self.nodes[id.index()].node = NodeState::Shared(std::sync::Arc::clone(node));
            // The shadow's Arc *is* this node's latest checkpoint: seed the
            // delta cache so a cut taken before the clone touches the node
            // re-shares it instead of re-cloning.
            self.ckpt_cache[id.index()] = Some(std::sync::Arc::clone(node));
            self.dirty[id.index()] = false;
        }
        for slot in self.nodes.iter_mut() {
            if !slot.node.is_installed() {
                // Nodes outside the snapshot scope are absent; mark crashed so
                // no events are dispatched to them.
                slot.crashed = Some(Self::OUTSIDE_SNAPSHOT.to_string());
            }
        }
        for &(a, b) in shadow.sessions_up() {
            if self.sessions.contains_key(&Self::skey(a, b)) {
                self.sessions.insert(Self::skey(a, b), SessionState::Up);
            }
        }
        // Re-enqueue in-flight messages preserving per-channel order.
        let inflight: Vec<(NodeId, NodeId, Vec<Vec<u8>>)> = shadow
            .in_flight()
            .iter()
            .map(|(a, b, m)| (*a, *b, m.clone()))
            .collect();
        for (src, dst, msgs) in inflight {
            for bytes in msgs {
                if self.session_up(src, dst) {
                    self.send_frame(
                        src,
                        dst,
                        Frame::Data {
                            bytes: Payload::Heap(bytes),
                            quiet: false,
                        },
                    );
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::LinkParams;
    use core::any::Any;

    /// Counts messages; replies with its own id appended.
    #[derive(Clone)]
    struct Pinger {
        initiate: bool,
        sent: u32,
        got: Vec<(NodeId, Vec<u8>)>,
        max_rounds: u32,
    }

    impl Pinger {
        fn new(initiate: bool) -> Self {
            Pinger {
                initiate,
                sent: 0,
                got: Vec::new(),
                max_rounds: 4,
            }
        }
    }

    impl Node for Pinger {
        fn on_session(&mut self, peer: NodeId, ev: SessionEvent, api: &mut NodeApi<'_>) {
            if self.initiate && matches!(ev, SessionEvent::Up) {
                api.send(peer, vec![0]);
                self.sent += 1;
            }
        }
        fn on_message(&mut self, from: NodeId, data: &[u8], api: &mut NodeApi<'_>) {
            self.got.push((from, data.to_vec()));
            if (data[0] as u32) < self.max_rounds {
                api.send(from, vec![data[0] + 1]);
                self.sent += 1;
            }
        }
        fn clone_node(&self) -> Box<dyn Node> {
            Box::new(self.clone())
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    fn two_node_sim(seed: u64) -> Simulator {
        let topo = Topology::line(2, LinkParams::fixed(SimDuration::from_millis(5)));
        let mut sim = Simulator::new(topo, seed);
        sim.set_node(NodeId(0), Box::new(Pinger::new(true)));
        sim.set_node(NodeId(1), Box::new(Pinger::new(false)));
        sim.start();
        sim
    }

    #[test]
    fn ping_pong_round_trips() {
        let mut sim = two_node_sim(1);
        sim.run_until(SimTime::from_nanos(10_000_000_000));
        let p1 = sim
            .node(NodeId(1))
            .as_any()
            .downcast_ref::<Pinger>()
            .unwrap();
        assert!(!p1.got.is_empty(), "peer received nothing");
        assert_eq!(p1.got[0].1, vec![0]);
        let stats = sim.trace().stats();
        assert!(
            stats.msgs_delivered >= 5,
            "expected full ping-pong exchange"
        );
    }

    #[test]
    fn deterministic_replay() {
        let mut a = two_node_sim(42);
        let mut b = two_node_sim(42);
        a.run_until(SimTime::from_nanos(1_000_000_000));
        b.run_until(SimTime::from_nanos(1_000_000_000));
        assert_eq!(a.trace().stats(), b.trace().stats());
        assert_eq!(a.now(), b.now());
    }

    #[test]
    fn quiescence_detected() {
        let mut sim = two_node_sim(7);
        let out = sim.run_until_quiet(
            SimDuration::from_millis(100),
            SimTime::from_nanos(60_000_000_000),
        );
        assert_eq!(out, QuietOutcome::Quiescent);
        // After quiescence the exchange is over (4 rounds + initial).
        let p0 = sim
            .node(NodeId(0))
            .as_any()
            .downcast_ref::<Pinger>()
            .unwrap();
        assert!(p0.sent >= 2);
    }

    #[test]
    fn session_reset_drops_in_flight() {
        let mut sim = two_node_sim(3);
        // Let the session come up and a message get in flight.
        sim.run_until(SimTime::from_nanos(2_000_000));
        sim.inject_session_reset(NodeId(0), NodeId(1));
        assert!(!sim.session_up(NodeId(0), NodeId(1)));
        let down_before = sim.trace().stats().sessions_down;
        assert_eq!(down_before, 1);
        // Auto-reconnect (default 5s) brings it back.
        sim.run_until(SimTime::from_nanos(20_000_000_000));
        assert!(sim.session_up(NodeId(0), NodeId(1)));
    }

    #[test]
    fn link_down_prevents_reconnect() {
        let mut sim = two_node_sim(4);
        sim.run_until(SimTime::from_nanos(2_000_000));
        sim.inject_link_down(NodeId(0), NodeId(1));
        sim.run_until(SimTime::from_nanos(30_000_000_000));
        assert!(!sim.session_up(NodeId(0), NodeId(1)));
        sim.inject_link_up(NodeId(0), NodeId(1));
        sim.run_until(SimTime::from_nanos(31_000_000_000));
        assert!(sim.session_up(NodeId(0), NodeId(1)));
    }

    #[test]
    fn crash_tears_down_sessions_and_mutes_node() {
        let mut sim = two_node_sim(5);
        sim.run_until(SimTime::from_nanos(2_000_000));
        sim.inject_node_crash(NodeId(1));
        assert!(sim.crashed(NodeId(1)).is_some());
        assert!(!sim.session_up(NodeId(0), NodeId(1)));
        sim.run_until(SimTime::from_nanos(10_000_000_000));
        assert!(
            !sim.session_up(NodeId(0), NodeId(1)),
            "crashed node must not reconnect"
        );
    }

    #[test]
    fn restart_recovers_from_pristine() {
        let mut sim = two_node_sim(6);
        sim.run_until(SimTime::from_nanos(5_000_000_000));
        sim.inject_node_crash(NodeId(1));
        sim.run_until(SimTime::from_nanos(6_000_000_000));
        sim.inject_node_restart(NodeId(1));
        sim.run_until(SimTime::from_nanos(12_000_000_000));
        assert!(sim.crashed(NodeId(1)).is_none());
        assert!(sim.session_up(NodeId(0), NodeId(1)));
        let p1 = sim
            .node(NodeId(1))
            .as_any()
            .downcast_ref::<Pinger>()
            .unwrap();
        // Restarted from pristine: history cleared, then new exchange happened.
        assert!(p1.got.len() <= 5);
    }

    #[test]
    fn timers_fire_and_cancel() {
        #[derive(Clone, Default)]
        struct T {
            fired: Vec<u64>,
        }
        impl Node for T {
            fn on_start(&mut self, api: &mut NodeApi<'_>) {
                api.set_timer(SimDuration::from_millis(10), 1);
                api.set_timer(SimDuration::from_millis(20), 2);
                api.cancel_timer(2);
                api.set_timer(SimDuration::from_millis(30), 3);
            }
            fn on_message(&mut self, _: NodeId, _: &[u8], _: &mut NodeApi<'_>) {}
            fn on_timer(&mut self, token: u64, _: &mut NodeApi<'_>) {
                self.fired.push(token);
            }
            fn clone_node(&self) -> Box<dyn Node> {
                Box::new(self.clone())
            }
            fn as_any(&self) -> &dyn Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn Any {
                self
            }
        }
        let topo = Topology::with_nodes(1);
        let mut sim = Simulator::new(topo, 0);
        sim.set_node(NodeId(0), Box::new(T::default()));
        sim.start();
        sim.run_until(SimTime::from_nanos(1_000_000_000));
        let t = sim.node(NodeId(0)).as_any().downcast_ref::<T>().unwrap();
        assert_eq!(t.fired, vec![1, 3], "canceled timer must not fire");
    }

    #[test]
    fn rearming_timer_supersedes() {
        #[derive(Clone, Default)]
        struct T {
            fired: u32,
        }
        impl Node for T {
            fn on_start(&mut self, api: &mut NodeApi<'_>) {
                api.set_timer(SimDuration::from_millis(10), 9);
                api.set_timer(SimDuration::from_millis(50), 9); // re-arm
            }
            fn on_message(&mut self, _: NodeId, _: &[u8], _: &mut NodeApi<'_>) {}
            fn on_timer(&mut self, _t: u64, _: &mut NodeApi<'_>) {
                self.fired += 1;
            }
            fn clone_node(&self) -> Box<dyn Node> {
                Box::new(self.clone())
            }
            fn as_any(&self) -> &dyn Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn Any {
                self
            }
        }
        let mut sim = Simulator::new(Topology::with_nodes(1), 0);
        sim.set_node(NodeId(0), Box::new(T::default()));
        sim.start();
        sim.run_until(SimTime::from_nanos(1_000_000_000));
        let t = sim.node(NodeId(0)).as_any().downcast_ref::<T>().unwrap();
        assert_eq!(t.fired, 1, "re-armed timer must fire exactly once");
    }

    #[test]
    fn reset_from_shadow_matches_from_shadow_state_for_state() {
        // A pooled simulator rebound with `reset_from_shadow` must be
        // indistinguishable from a freshly built `from_shadow` clone —
        // same events, same node states, same randomness — even when the
        // pooled simulator previously ran a *different* shadow.
        let mut live = two_node_sim(42);
        live.run_until(SimTime::from_nanos(500_000_000));
        let early = live.instant_snapshot();
        live.deliver_direct(NodeId(0), NodeId(1), &[1]);
        live.run_until(SimTime::from_nanos(1_000_000_000));
        let late = live.instant_snapshot();
        let topo = live.topology().clone();

        let drive = |sim: &mut Simulator| {
            sim.deliver_direct(NodeId(0), NodeId(1), &[0]);
            sim.run_until(sim.now() + SimDuration::from_secs(5));
        };

        let mut fresh = Simulator::from_shadow(&late, &topo, 7);
        drive(&mut fresh);

        // Dirty the pooled simulator thoroughly before the reset: a
        // different shadow, a different seed, extra traffic and a fault.
        let mut pooled = Simulator::from_shadow(&early, &topo, 99);
        pooled.deliver_direct(NodeId(1), NodeId(0), &[2]);
        pooled.run_until(pooled.now() + SimDuration::from_secs(1));
        pooled.inject_session_reset(NodeId(0), NodeId(1));
        pooled.reset_from_shadow(&late, 7);
        drive(&mut pooled);

        assert_eq!(fresh.now(), pooled.now());
        assert_eq!(fresh.trace().stats(), pooled.trace().stats());
        assert_eq!(
            fresh.session_up(NodeId(0), NodeId(1)),
            pooled.session_up(NodeId(0), NodeId(1))
        );
        for i in 0..2 {
            let a = fresh
                .node(NodeId(i))
                .as_any()
                .downcast_ref::<Pinger>()
                .unwrap();
            let b = pooled
                .node(NodeId(i))
                .as_any()
                .downcast_ref::<Pinger>()
                .unwrap();
            assert_eq!(a.sent, b.sent, "node {i} sent counters diverge");
            assert_eq!(a.got, b.got, "node {i} receive logs diverge");
        }
    }

    #[test]
    fn cow_clones_share_until_first_mutation() {
        // Instantiating a snapshot must not deep-copy nodes up front: the
        // checkpoint Arcs stay shared until a clone drives a node, and
        // mutation in one clone never leaks into a sibling.
        let mut live = two_node_sim(5);
        live.run_until(SimTime::from_nanos(1_000_000_000));
        let shadow = live.instant_snapshot();
        let topo = live.topology().clone();
        let baseline = shadow
            .nodes()
            .values()
            .map(|n| n.as_any().downcast_ref::<Pinger>().unwrap().got.len())
            .collect::<Vec<_>>();

        let mut a = Simulator::from_shadow(&shadow, &topo, 1);
        let b = Simulator::from_shadow(&shadow, &topo, 1);
        a.deliver_direct(NodeId(0), NodeId(1), &[9]);
        let a1 = a.node(NodeId(1)).as_any().downcast_ref::<Pinger>().unwrap();
        let b1 = b.node(NodeId(1)).as_any().downcast_ref::<Pinger>().unwrap();
        assert_eq!(a1.got.len(), baseline[1] + 1, "clone a saw the delivery");
        assert_eq!(b1.got.len(), baseline[1], "sibling clone unaffected");
        let s1 = shadow
            .nodes()
            .get(&NodeId(1))
            .unwrap()
            .as_any()
            .downcast_ref::<Pinger>()
            .unwrap();
        assert_eq!(s1.got.len(), baseline[1], "snapshot itself unaffected");
    }

    fn line_sim(n: usize, seed: u64) -> Simulator {
        let topo = Topology::line(n, LinkParams::fixed(SimDuration::from_millis(5)));
        let mut sim = Simulator::new(topo, seed);
        sim.set_node(NodeId(0), Box::new(Pinger::new(true)));
        for i in 1..n {
            sim.set_node(NodeId(i as u32), Box::new(Pinger::new(false)));
        }
        sim.start();
        sim
    }

    #[test]
    fn delta_snapshot_recaptures_only_dirtied_nodes() {
        // Steady state: successive cuts re-clone only nodes touched since
        // the previous cut; everything else shares its Arc with the prior
        // shadow (the delta chain). This is the scale unlock: at 1k+ nodes
        // a campaign round touches a handful of nodes, not all of them.
        let mut sim = line_sim(8, 11);
        sim.run_until_quiet(
            SimDuration::from_millis(200),
            SimTime::from_nanos(30_000_000_000),
        );
        let first = sim.instant_snapshot();
        let s1 = sim.take_snapshot_stats();
        assert_eq!(s1.nodes_recaptured, 8, "first cut captures everything");
        assert!(s1.delta_bytes > 0 || first.node_count() == 8);

        // Touch exactly one node (payload 9 >= max_rounds, so no replies).
        sim.deliver_direct(NodeId(2), NodeId(3), &[9]);
        let second = sim.instant_snapshot();
        let s2 = sim.take_snapshot_stats();
        assert_eq!(
            s2.nodes_recaptured, 1,
            "steady-state cut re-captures only the dirtied node"
        );
        assert_eq!(s2.nodes_cached, 7);
        for i in 0..8u32 {
            let shared = std::sync::Arc::ptr_eq(
                first.nodes().get(&NodeId(i)).unwrap(),
                second.nodes().get(&NodeId(i)).unwrap(),
            );
            assert_eq!(shared, i != 3, "node {i} delta-chain sharing is wrong");
        }

        // Knob off: every cut is a full re-capture again.
        sim.set_delta_snapshots(false);
        let _third = sim.instant_snapshot();
        let s3 = sim.take_snapshot_stats();
        assert_eq!(s3.nodes_recaptured, 8);
        assert_eq!(s3.nodes_cached, 0);
    }

    #[test]
    fn delta_snapshots_do_not_change_outcomes() {
        // A cached checkpoint of an unmutated node is state-identical to a
        // fresh clone: runs with the knob on and off must produce the same
        // shadows and the same downstream behavior.
        let run = |delta: bool| {
            let mut sim = line_sim(4, 23);
            sim.set_delta_snapshots(delta);
            sim.run_until(SimTime::from_nanos(2_000_000_000));
            let _warm = sim.instant_snapshot();
            sim.deliver_direct(NodeId(0), NodeId(1), &[0]);
            sim.run_until(SimTime::from_nanos(4_000_000_000));
            let shadow = sim.instant_snapshot();
            let topo = sim.topology().clone();
            let mut clone = Simulator::from_shadow(&shadow, &topo, 5);
            clone.deliver_direct(NodeId(1), NodeId(2), &[1]);
            clone.run_until(clone.now() + SimDuration::from_secs(5));
            let states: Vec<_> = (0..4u32)
                .map(|i| {
                    let p = clone
                        .node(NodeId(i))
                        .as_any()
                        .downcast_ref::<Pinger>()
                        .unwrap();
                    (p.sent, p.got.clone())
                })
                .collect();
            (clone.now(), clone.trace().stats(), states)
        };
        assert_eq!(run(true), run(false), "delta knob must be outcome-neutral");
    }

    #[test]
    fn reset_from_shadow_rebinds_against_a_delta_chain_after_churn() {
        // Regression: a pooled simulator rebound against the latest link of
        // a delta-snapshot chain — including a node that left (crashed) and
        // rejoined between cuts — matches a fresh `from_shadow` clone
        // state-for-state.
        let mut live = line_sim(4, 31);
        live.run_until(SimTime::from_nanos(1_000_000_000));
        let chain0 = live.instant_snapshot();

        // Churn node 2: leave, rejoin, then more traffic.
        live.inject_node_crash(NodeId(2));
        live.run_until(SimTime::from_nanos(2_000_000_000));
        live.inject_node_restart(NodeId(2));
        live.run_until(SimTime::from_nanos(4_000_000_000));
        live.deliver_direct(NodeId(1), NodeId(2), &[0]);
        live.run_until(SimTime::from_nanos(6_000_000_000));
        let chain1 = live.instant_snapshot();
        // The chain shares untouched nodes and re-captures the churned one.
        assert!(std::sync::Arc::ptr_eq(
            chain0.nodes().get(&NodeId(0)).unwrap(),
            chain1.nodes().get(&NodeId(0)).unwrap(),
        ));
        assert!(!std::sync::Arc::ptr_eq(
            chain0.nodes().get(&NodeId(2)).unwrap(),
            chain1.nodes().get(&NodeId(2)).unwrap(),
        ));
        let topo = live.topology().clone();

        let drive = |sim: &mut Simulator| {
            sim.deliver_direct(NodeId(0), NodeId(1), &[0]);
            sim.run_until(sim.now() + SimDuration::from_secs(5));
        };

        let mut fresh = Simulator::from_shadow(&chain1, &topo, 7);
        drive(&mut fresh);

        let mut pooled = Simulator::from_shadow(&chain0, &topo, 99);
        pooled.deliver_direct(NodeId(1), NodeId(0), &[2]);
        pooled.run_until(pooled.now() + SimDuration::from_secs(1));
        let _ = pooled.instant_snapshot(); // warm the pooled sim's own cache
        pooled.reset_from_shadow(&chain1, 7);
        drive(&mut pooled);

        assert_eq!(fresh.now(), pooled.now());
        assert_eq!(fresh.trace().stats(), pooled.trace().stats());
        for i in 0..4 {
            let a = fresh
                .node(NodeId(i))
                .as_any()
                .downcast_ref::<Pinger>()
                .unwrap();
            let b = pooled
                .node(NodeId(i))
                .as_any()
                .downcast_ref::<Pinger>()
                .unwrap();
            assert_eq!(a.sent, b.sent, "node {i} sent counters diverge");
            assert_eq!(a.got, b.got, "node {i} receive logs diverge");
        }
    }

    #[test]
    fn deliver_direct_bypasses_channel() {
        let mut sim = two_node_sim(8);
        sim.run_until(SimTime::from_nanos(2_000_000));
        let before = sim
            .node(NodeId(1))
            .as_any()
            .downcast_ref::<Pinger>()
            .unwrap()
            .got
            .len();
        sim.deliver_direct(NodeId(0), NodeId(1), &[99]);
        let p1 = sim
            .node(NodeId(1))
            .as_any()
            .downcast_ref::<Pinger>()
            .unwrap();
        assert_eq!(p1.got.len(), before + 1);
        assert_eq!(p1.got.last().unwrap().1, vec![99]);
    }

    // ------------------------------------------------------------------
    // Channel-fidelity layer (SimConfig::unreliable_links)
    // ------------------------------------------------------------------

    fn unreliable_two_node(seed: u64, faults: crate::faults::LinkFaults) -> Simulator {
        let topo = Topology::line(2, LinkParams::fixed(SimDuration::from_millis(5)));
        let mut sim = Simulator::with_config(
            topo,
            seed,
            SimConfig {
                unreliable_links: true,
                link_faults: faults,
                ..SimConfig::default()
            },
        );
        sim.set_node(NodeId(0), Box::new(Pinger::new(true)));
        sim.set_node(NodeId(1), Box::new(Pinger::new(false)));
        sim.start();
        sim
    }

    #[test]
    fn noop_fault_profile_is_byte_identical_to_reliable() {
        let mut unreliable = unreliable_two_node(11, crate::faults::LinkFaults::lossy(0.0));
        let mut reliable = two_node_sim(11);
        unreliable.run_until(SimTime::from_nanos(10_000_000_000));
        reliable.run_until(SimTime::from_nanos(10_000_000_000));
        assert_eq!(unreliable.trace().stats(), reliable.trace().stats());
        let wire = unreliable.take_wire_stats();
        assert_eq!(wire.frames_dropped, 0);
        assert_eq!(wire.frames_duplicated, 0);
        assert_eq!(wire.frames_reordered, 0);
    }

    #[test]
    fn certain_drop_loses_every_data_frame() {
        let mut sim = unreliable_two_node(
            12,
            crate::faults::LinkFaults {
                drop: 1.0,
                ..crate::faults::LinkFaults::lossy(0.0)
            },
        );
        sim.run_until(SimTime::from_nanos(10_000_000_000));
        let stats = sim.trace().stats();
        assert_eq!(stats.msgs_delivered, 0, "every frame dropped");
        assert!(stats.msgs_sent >= 1, "the initiator did send");
        let wire = sim.take_wire_stats();
        assert_eq!(wire.frames_dropped, stats.msgs_sent);
    }

    #[test]
    fn certain_duplication_doubles_deliveries() {
        let mut sim = unreliable_two_node(
            13,
            crate::faults::LinkFaults {
                duplicate: 1.0,
                reorder_window: SimDuration::from_millis(2),
                ..crate::faults::LinkFaults::lossy(0.0)
            },
        );
        sim.run_until(SimTime::from_nanos(30_000_000_000));
        let stats = sim.trace().stats();
        assert_eq!(
            stats.msgs_delivered,
            2 * stats.msgs_sent,
            "every data frame arrives exactly twice"
        );
        let wire = sim.take_wire_stats();
        assert_eq!(wire.frames_duplicated, stats.msgs_sent);
        assert_eq!(wire.frames_dropped, 0);
    }

    #[test]
    fn faulty_runs_replay_byte_identically() {
        let faults = crate::faults::LinkFaults {
            burst: Some(crate::faults::BurstLoss::harsh()),
            ..crate::faults::LinkFaults::lossy(0.2)
        };
        let mut a = unreliable_two_node(42, faults);
        let mut b = unreliable_two_node(42, faults);
        a.run_until(SimTime::from_nanos(30_000_000_000));
        b.run_until(SimTime::from_nanos(30_000_000_000));
        assert_eq!(a.trace().stats(), b.trace().stats());
        assert_eq!(a.take_wire_stats(), b.take_wire_stats());
    }

    #[test]
    fn reset_from_shadow_reseeds_fault_streams() {
        let faults = crate::faults::LinkFaults::lossy(0.3);
        let mut live = two_node_sim(21);
        live.run_until(SimTime::from_nanos(2_000_000_000));
        let shadow = live.instant_snapshot();
        let topo = live.topology().clone();

        let mut fresh = Simulator::from_shadow(&shadow, &topo, 77);
        fresh.set_unreliable_links(true);
        fresh.set_link_faults(faults);

        // A pooled simulator that already consumed fault randomness …
        let mut pooled = unreliable_two_node(99, faults);
        pooled.run_until(SimTime::from_nanos(5_000_000_000));
        // … must replay identically to the fresh clone after a reset.
        // (Wire counters are drained by the clone pool at release, not by
        // the reset itself — mirror that here.)
        let _ = pooled.take_wire_stats();
        pooled.reset_from_shadow(&shadow, 77);
        pooled.set_unreliable_links(true);
        pooled.set_link_faults(faults);

        let horizon = shadow.base_time() + SimDuration::from_secs(20);
        fresh.run_until(horizon);
        pooled.run_until(horizon);
        assert_eq!(fresh.trace().stats(), pooled.trace().stats());
        assert_eq!(fresh.take_wire_stats(), pooled.take_wire_stats());
    }

    #[test]
    fn consistent_snapshot_completes_under_heavy_loss() {
        let mut sim = unreliable_two_node(
            14,
            crate::faults::LinkFaults {
                drop: 0.9,
                ..crate::faults::LinkFaults::lossy(0.0)
            },
        );
        sim.run_until(SimTime::from_nanos(2_000_000_000));
        assert!(sim.session_up(NodeId(0), NodeId(1)));
        let id = sim.start_snapshot(NodeId(0));
        sim.run_until(SimTime::from_nanos(4_000_000_000));
        match sim.poll_snapshot(id) {
            SnapshotProgress::Complete(_) => {}
            SnapshotProgress::InProgress => panic!("cut stuck under loss (markers exempt)"),
            SnapshotProgress::Failed(e) => panic!("cut failed under loss: {e}"),
        }
    }
}
