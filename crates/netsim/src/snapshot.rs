//! Consistent distributed snapshots (Chandy–Lamport) and the resulting
//! *shadow snapshots* DiCE explores over.
//!
//! The marker protocol runs in-band through the same FIFO channels as data
//! (see [`crate::sim::Simulator::start_snapshot`]); this module holds the
//! bookkeeping state machine and the completed snapshot artifact.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use crate::node::{Node, NodeId};
use crate::time::SimTime;

/// Identifier of a snapshot within one simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct SnapshotId(pub u32);

/// Progress report for an in-flight snapshot.
pub enum SnapshotProgress {
    /// Markers are still propagating.
    InProgress,
    /// The snapshot completed; here is the artifact.
    Complete(Box<ShadowSnapshot>),
    /// The snapshot cannot complete (marker lost, node crashed, ...).
    Failed(String),
}

/// Chandy–Lamport bookkeeping for one snapshot.
pub(crate) struct SnapshotState {
    id: SnapshotId,
    #[allow(dead_code)]
    initiator: NodeId,
    members: BTreeSet<NodeId>,
    /// Directed channels that must be drained by a marker.
    channels: BTreeSet<(NodeId, NodeId)>,
    /// Channels whose marker has arrived.
    done: BTreeSet<(NodeId, NodeId)>,
    /// Recorded node checkpoints, shared copy-on-write with any clones
    /// later materialized from the snapshot.
    nodes: BTreeMap<NodeId, Arc<dyn Node>>,
    /// Channel contents observed between `record_node(dst)` and the marker.
    recorded: BTreeMap<(NodeId, NodeId), Vec<Vec<u8>>>,
    sessions_up: Vec<(NodeId, NodeId)>,
    started_at: SimTime,
    failure: Option<String>,
    complete: bool,
}

#[allow(dead_code)]
impl SnapshotState {
    pub(crate) fn new(
        id: SnapshotId,
        initiator: NodeId,
        members: BTreeSet<NodeId>,
        channels: BTreeSet<(NodeId, NodeId)>,
        sessions_up: Vec<(NodeId, NodeId)>,
        started_at: SimTime,
    ) -> Self {
        SnapshotState {
            id,
            initiator,
            members,
            channels,
            done: BTreeSet::new(),
            nodes: BTreeMap::new(),
            recorded: BTreeMap::new(),
            sessions_up,
            started_at,
            failure: None,
            complete: false,
        }
    }

    pub(crate) fn id(&self) -> SnapshotId {
        self.id
    }

    pub(crate) fn is_marked(&self, n: NodeId) -> bool {
        self.nodes.contains_key(&n)
    }

    pub(crate) fn record_node(&mut self, n: NodeId, state: Arc<dyn Node>) {
        self.nodes.insert(n, state);
        // Start recording every incoming member channel of n.
        let incoming: Vec<(NodeId, NodeId)> = self
            .channels
            .iter()
            .filter(|(_, dst)| *dst == n)
            .copied()
            .collect();
        for c in incoming {
            self.recorded.entry(c).or_default();
        }
    }

    /// Outgoing member channels of `n` (marker fan-out set).
    pub(crate) fn outgoing_of(&self, n: NodeId) -> Vec<NodeId> {
        self.channels
            .iter()
            .filter(|(src, _)| *src == n)
            .map(|(_, dst)| *dst)
            .collect()
    }

    /// Marker arrived on `src -> dst` and `dst` was just recorded: channel
    /// state is empty by the CL rule.
    pub(crate) fn channel_done_empty(&mut self, src: NodeId, dst: NodeId) {
        self.recorded.insert((src, dst), Vec::new());
        self.done.insert((src, dst));
    }

    /// Marker arrived on `src -> dst` for an already-marked `dst`: whatever
    /// was observed since the mark is the channel state.
    pub(crate) fn channel_done_recorded(&mut self, src: NodeId, dst: NodeId) {
        self.done.insert((src, dst));
    }

    /// A data frame was delivered on `src -> dst`; if that channel is being
    /// recorded and not yet drained, it belongs to the channel state.
    pub(crate) fn observe(&mut self, src: NodeId, dst: NodeId, bytes: &[u8]) {
        if self.is_terminal() {
            return;
        }
        if self.done.contains(&(src, dst)) || !self.channels.contains(&(src, dst)) {
            return;
        }
        if self.is_marked(dst) {
            self.recorded
                .entry((src, dst))
                .or_default()
                .push(bytes.to_vec());
        }
    }

    pub(crate) fn channel_reset(&mut self, a: NodeId, b: NodeId) {
        if self.is_terminal() {
            return;
        }
        for dir in [(a, b), (b, a)] {
            if self.channels.contains(&dir) && !self.done.contains(&dir) {
                self.fail(format!(
                    "channel {}->{} reset during snapshot",
                    dir.0, dir.1
                ));
                return;
            }
        }
    }

    pub(crate) fn node_crashed(&mut self, n: NodeId) {
        if !self.is_terminal() && self.members.contains(&n) && !self.is_marked(n) {
            self.fail(format!("member {n} crashed before checkpointing"));
        }
    }

    pub(crate) fn fail(&mut self, why: String) {
        if self.failure.is_none() && !self.complete {
            self.failure = Some(why);
        }
    }

    pub(crate) fn failure(&self) -> Option<&str> {
        self.failure.as_deref()
    }

    pub(crate) fn all_done(&self) -> bool {
        self.failure.is_none()
            && self.nodes.len() == self.members.len()
            && self.done.len() == self.channels.len()
    }

    pub(crate) fn complete(&mut self) {
        self.complete = true;
    }

    pub(crate) fn is_complete(&self) -> bool {
        self.complete
    }

    pub(crate) fn is_terminal(&self) -> bool {
        self.complete || self.failure.is_some()
    }

    pub(crate) fn into_shadow(self) -> ShadowSnapshot {
        debug_assert!(self.complete);
        let in_flight = self
            .recorded
            .into_iter()
            .filter(|(_, msgs)| !msgs.is_empty())
            .map(|((src, dst), msgs)| (src, dst, msgs))
            .collect();
        ShadowSnapshot::new(self.started_at, self.nodes, in_flight, self.sessions_up)
    }
}

/// A completed consistent snapshot: cloned node states, the messages that
/// were in flight, and which sessions were up. This is the unit DiCE clones
/// and explores over, in isolation from the live system.
///
/// Node checkpoints live behind `Arc<dyn Node>` and are shared
/// **copy-on-write** with every simulator materialized from the snapshot:
/// cloning a `ShadowSnapshot` (or instantiating it with
/// [`Simulator::from_shadow`]) only bumps reference counts, and a node's
/// state is deep-copied (`clone_node`) the first time a clone actually
/// mutates it. A validation clone that quiesces after touching three of
/// 27 routers pays for three checkpoint copies, not 27.
///
/// [`Simulator::from_shadow`]: crate::sim::Simulator::from_shadow
pub struct ShadowSnapshot {
    base_time: SimTime,
    nodes: BTreeMap<NodeId, Arc<dyn Node>>,
    in_flight: Vec<(NodeId, NodeId, Vec<Vec<u8>>)>,
    sessions_up: Vec<(NodeId, NodeId)>,
}

impl ShadowSnapshot {
    pub(crate) fn new(
        base_time: SimTime,
        nodes: BTreeMap<NodeId, Arc<dyn Node>>,
        in_flight: Vec<(NodeId, NodeId, Vec<Vec<u8>>)>,
        sessions_up: Vec<(NodeId, NodeId)>,
    ) -> Self {
        ShadowSnapshot {
            base_time,
            nodes,
            in_flight,
            sessions_up,
        }
    }

    /// Assemble a snapshot from hand-collected parts. Exists for
    /// experiments that build deliberately *inconsistent* (uncoordinated)
    /// snapshots to quantify what the Chandy–Lamport protocol buys.
    pub fn from_parts(
        base_time: SimTime,
        nodes: BTreeMap<NodeId, Box<dyn Node>>,
        in_flight: Vec<(NodeId, NodeId, Vec<Vec<u8>>)>,
        sessions_up: Vec<(NodeId, NodeId)>,
    ) -> Self {
        let nodes = nodes.into_iter().map(|(k, v)| (k, Arc::from(v))).collect();
        Self::new(base_time, nodes, in_flight, sessions_up)
    }

    /// Simulated time at which the snapshot was initiated.
    pub fn base_time(&self) -> SimTime {
        self.base_time
    }

    /// The recorded node checkpoints (shared copy-on-write).
    pub fn nodes(&self) -> &BTreeMap<NodeId, Arc<dyn Node>> {
        &self.nodes
    }

    /// Messages in flight per directed channel.
    pub fn in_flight(&self) -> &[(NodeId, NodeId, Vec<Vec<u8>>)] {
        &self.in_flight
    }

    /// Sessions that were up at snapshot time.
    pub fn sessions_up(&self) -> &[(NodeId, NodeId)] {
        &self.sessions_up
    }

    /// Number of checkpointed nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Total in-flight messages captured as channel state.
    pub fn in_flight_count(&self) -> usize {
        self.in_flight.iter().map(|(_, _, m)| m.len()).sum()
    }

    /// Approximate checkpoint footprint: node state sizes plus channel bytes.
    pub fn approx_bytes(&self) -> usize {
        let node_bytes: usize = self.nodes.values().map(|n| n.state_size()).sum();
        let chan_bytes: usize = self
            .in_flight
            .iter()
            .flat_map(|(_, _, msgs)| msgs.iter().map(|m| m.len()))
            .sum();
        node_bytes + chan_bytes
    }

    /// Move this snapshot behind an [`Arc`] for zero-copy sharing across
    /// worker threads.
    ///
    /// A `ShadowSnapshot` is immutable after the Chandy–Lamport pass
    /// completes, and [`Node`] requires `Send + Sync`, so one snapshot can
    /// back any number of concurrent [`Simulator::from_shadow`]
    /// instantiations — the enabling primitive for campaign engines that
    /// run whole exploration rounds in parallel over a single consistent
    /// checkpoint. No node state is copied until a clone materializes.
    ///
    /// [`Simulator::from_shadow`]: crate::sim::Simulator::from_shadow
    pub fn into_shared(self) -> std::sync::Arc<ShadowSnapshot> {
        std::sync::Arc::new(self)
    }
}

// Shared-snapshot parallelism relies on these bounds; keep them guaranteed
// at compile time (a `!Sync` field sneaking into a node checkpoint would
// otherwise only fail at the distant campaign call site).
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<ShadowSnapshot>();
};

impl Clone for ShadowSnapshot {
    fn clone(&self) -> Self {
        // Checkpoints are immutable behind `Arc`, so a snapshot clone is a
        // reference-count bump per node — the deep copy happens lazily,
        // per node, only when a materialized simulator mutates it.
        ShadowSnapshot {
            base_time: self.base_time,
            nodes: self
                .nodes
                .iter()
                .map(|(k, v)| (*k, Arc::clone(v)))
                .collect(),
            in_flight: self.in_flight.clone(),
            sessions_up: self.sessions_up.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::LinkParams;
    use crate::node::{NodeApi, SessionEvent};
    use crate::sim::Simulator;
    use crate::time::{SimDuration, SimTime};
    use crate::topology::Topology;
    use core::any::Any;

    /// A node that keeps a running counter of all bytes it has received and
    /// relays each message to its other neighbors (flooding).
    #[derive(Clone, Default)]
    struct Acc {
        sum: u64,
        neighbors: Vec<NodeId>,
    }

    impl Node for Acc {
        fn on_session(&mut self, peer: NodeId, ev: SessionEvent, _: &mut NodeApi<'_>) {
            if matches!(ev, SessionEvent::Up) && !self.neighbors.contains(&peer) {
                self.neighbors.push(peer);
            }
        }
        fn on_message(&mut self, from: NodeId, data: &[u8], api: &mut NodeApi<'_>) {
            self.sum += data.iter().map(|&b| b as u64).sum::<u64>();
            if data[0] > 0 {
                let fwd = vec![data[0] - 1];
                for &n in &self.neighbors {
                    if n != from {
                        api.send(n, fwd.clone());
                    }
                }
            }
        }
        fn clone_node(&self) -> Box<dyn Node> {
            Box::new(self.clone())
        }
        fn state_size(&self) -> usize {
            8 + self.neighbors.len() * 4
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    fn ring_sim(n: usize, seed: u64) -> Simulator {
        let topo = Topology::ring(n, LinkParams::fixed(SimDuration::from_millis(10)));
        let mut sim = Simulator::new(topo, seed);
        for i in 0..n {
            sim.set_node(NodeId(i as u32), Box::new(Acc::default()));
        }
        sim.start();
        sim
    }

    #[test]
    fn snapshot_completes_on_quiet_ring() {
        let mut sim = ring_sim(5, 1);
        sim.run_until(SimTime::from_nanos(1_000_000_000));
        let id = sim.start_snapshot(NodeId(0));
        sim.run_until(SimTime::from_nanos(3_000_000_000));
        match sim.poll_snapshot(id) {
            SnapshotProgress::Complete(shadow) => {
                assert_eq!(shadow.node_count(), 5);
                assert_eq!(
                    shadow.in_flight_count(),
                    0,
                    "quiet ring has nothing in flight"
                );
            }
            SnapshotProgress::InProgress => panic!("snapshot did not complete"),
            SnapshotProgress::Failed(e) => panic!("snapshot failed: {e}"),
        }
    }

    #[test]
    fn snapshot_captures_in_flight_traffic() {
        let mut sim = ring_sim(4, 2);
        sim.run_until(SimTime::from_nanos(1_000_000_000));
        // Kick off a long flood, then snapshot mid-flight.
        sim.deliver_direct(NodeId(1), NodeId(0), &[60]);
        sim.run_for(SimDuration::from_millis(35));
        let id = sim.start_snapshot(NodeId(0));
        sim.run_until(SimTime::from_nanos(10_000_000_000));
        match sim.poll_snapshot(id) {
            SnapshotProgress::Complete(shadow) => {
                assert_eq!(shadow.node_count(), 4);
                // Global invariant: checkpointed sums + in-flight messages
                // must be consistent — replaying the shadow reaches the same
                // final total as the live run.
                let live_total: u64 = (0..4)
                    .map(|i| {
                        sim.node(NodeId(i))
                            .as_any()
                            .downcast_ref::<Acc>()
                            .unwrap()
                            .sum
                    })
                    .sum::<u64>();
                let mut replay = Simulator::from_shadow(&shadow, sim.topology(), 99);
                replay.run_until(SimTime::from_nanos(60_000_000_000));
                sim.run_until(SimTime::from_nanos(60_000_000_000));
                let live_final: u64 = (0..4)
                    .map(|i| {
                        sim.node(NodeId(i))
                            .as_any()
                            .downcast_ref::<Acc>()
                            .unwrap()
                            .sum
                    })
                    .sum();
                let replay_final: u64 = (0..4)
                    .map(|i| {
                        replay
                            .node(NodeId(i))
                            .as_any()
                            .downcast_ref::<Acc>()
                            .unwrap()
                            .sum
                    })
                    .sum();
                assert!(replay_final >= live_total);
                assert_eq!(
                    replay_final, live_final,
                    "consistent snapshot must replay to the live outcome"
                );
            }
            SnapshotProgress::InProgress => panic!("snapshot did not complete"),
            SnapshotProgress::Failed(e) => panic!("snapshot failed: {e}"),
        }
    }

    #[test]
    fn snapshot_fails_on_session_reset() {
        let mut sim = ring_sim(4, 3);
        sim.run_until(SimTime::from_nanos(500_000_000));
        let id = sim.start_snapshot(NodeId(0));
        // Reset a session before markers can drain.
        sim.inject_session_reset(NodeId(2), NodeId(3));
        sim.run_until(SimTime::from_nanos(3_000_000_000));
        match sim.poll_snapshot(id) {
            SnapshotProgress::Failed(_) => {}
            SnapshotProgress::Complete(_) => {
                panic!("snapshot should fail when a member channel resets mid-protocol")
            }
            SnapshotProgress::InProgress => panic!("snapshot stuck"),
        }
    }

    #[test]
    fn shadow_clone_is_deep() {
        let mut sim = ring_sim(3, 4);
        sim.run_until(SimTime::from_nanos(1_000_000_000));
        let shadow = sim.instant_snapshot();
        let clone = shadow.clone();
        assert_eq!(clone.node_count(), shadow.node_count());
        assert_eq!(clone.base_time(), shadow.base_time());
        // Mutating a simulator built from one clone must not affect another.
        let topo = sim.topology().clone();
        let mut s1 = Simulator::from_shadow(&clone, &topo, 5);
        s1.deliver_direct(NodeId(1), NodeId(0), &[3]);
        let s2 = Simulator::from_shadow(&shadow, &topo, 5);
        let a0 = s1
            .node(NodeId(0))
            .as_any()
            .downcast_ref::<Acc>()
            .unwrap()
            .sum;
        let b0 = s2
            .node(NodeId(0))
            .as_any()
            .downcast_ref::<Acc>()
            .unwrap()
            .sum;
        assert!(a0 > b0);
    }

    #[test]
    fn shared_snapshot_instantiates_concurrently() {
        // One Arc'd snapshot, many simultaneous `from_shadow` clones: every
        // clone must replay to the same deterministic outcome without the
        // snapshot being copied per thread.
        let mut sim = ring_sim(4, 8);
        sim.run_until(SimTime::from_nanos(1_000_000_000));
        sim.deliver_direct(NodeId(1), NodeId(0), &[40]);
        sim.run_for(SimDuration::from_millis(25));
        let shadow = sim.instant_snapshot().into_shared();
        let topo = sim.topology().clone();

        let totals: Vec<u64> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..8)
                .map(|_| {
                    let shadow = std::sync::Arc::clone(&shadow);
                    let topo = &topo;
                    s.spawn(move || {
                        let mut clone = Simulator::from_shadow(&shadow, topo, 17);
                        clone.run_until(SimTime::from_nanos(60_000_000_000));
                        (0..4)
                            .map(|i| {
                                clone
                                    .node(NodeId(i))
                                    .as_any()
                                    .downcast_ref::<Acc>()
                                    .unwrap()
                                    .sum
                            })
                            .sum::<u64>()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert!(totals[0] > 0, "flood replays in the clones");
        assert!(
            totals.windows(2).all(|w| w[0] == w[1]),
            "concurrent clones are deterministic: {totals:?}"
        );
    }

    #[test]
    fn instant_snapshot_counts_bytes() {
        let mut sim = ring_sim(3, 5);
        sim.run_until(SimTime::from_nanos(1_000_000_000));
        let shadow = sim.instant_snapshot();
        assert!(shadow.approx_bytes() > 0, "Acc nodes report state size");
    }
}
