//! Simulated time.
//!
//! The simulator never consults the wall clock: all timing is expressed in
//! integer nanoseconds of *virtual* time, which is what makes runs exactly
//! reproducible and snapshots replayable.

use core::fmt;
use core::ops::{Add, AddAssign, Mul, Sub};
use serde::{Deserialize, Serialize};

/// An instant in simulated time, in nanoseconds since simulation start.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

/// A span of simulated time, in nanoseconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; used as an "infinite" horizon.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Raw nanoseconds since the epoch.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Elapsed duration since `earlier`, saturating at zero.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Saturating addition of a duration.
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Construct from nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Construct from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Construct from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Raw nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Duration in milliseconds, rounded down.
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Duration as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Checked duration scaling by an integer factor.
    pub fn saturating_mul(self, k: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(k))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ms = self.0 / 1_000_000;
        let frac = (self.0 % 1_000_000) / 1_000;
        write!(f, "{}.{:03}ms", ms, frac)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{}ms", self.0 / 1_000_000)
        } else if self.0 >= 1_000 {
            write!(f, "{}us", self.0 / 1_000)
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_roundtrips() {
        let t = SimTime::from_nanos(5_000);
        let d = SimDuration::from_micros(3);
        assert_eq!((t + d).as_nanos(), 8_000);
        assert_eq!(((t + d) - t).as_nanos(), 3_000);
    }

    #[test]
    fn duration_constructors_agree() {
        assert_eq!(SimDuration::from_secs(2).as_nanos(), 2_000_000_000);
        assert_eq!(SimDuration::from_millis(2).as_nanos(), 2_000_000);
        assert_eq!(SimDuration::from_micros(2).as_nanos(), 2_000);
        assert_eq!(SimDuration::from_secs(1).as_millis(), 1000);
    }

    #[test]
    fn since_saturates() {
        let a = SimTime::from_nanos(10);
        let b = SimTime::from_nanos(20);
        assert_eq!(a.since(b), SimDuration::ZERO);
        assert_eq!(b.since(a).as_nanos(), 10);
    }

    #[test]
    fn display_is_human_readable() {
        assert_eq!(SimDuration::from_millis(1500).to_string(), "1.500s");
        assert_eq!(SimDuration::from_micros(42).to_string(), "42us");
        assert_eq!(SimTime::from_nanos(1_500_000).to_string(), "1.500ms");
    }

    #[test]
    fn ordering_is_chronological() {
        assert!(SimTime::from_nanos(1) < SimTime::from_nanos(2));
        assert!(SimTime::ZERO < SimTime::MAX);
    }
}
