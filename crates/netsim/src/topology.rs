//! Topologies: which nodes exist and how they are connected.
//!
//! Edges carry link parameters and, for AS-level graphs, a Gao–Rexford
//! business relationship (customer–provider or peer–peer). The relationship
//! labels are consumed by the BGP policy generator to derive realistic
//! import/export policies, which is how the paper's "Internet-like
//! conditions" arise at the routing layer.

use crate::link::LinkParams;
use crate::node::NodeId;
use crate::rng::SimRng;
use crate::time::SimDuration;
use std::collections::BTreeSet;

/// Business relationship of an edge `(a, b)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Relationship {
    /// `a` is the provider, `b` the customer.
    ProviderCustomer,
    /// Settlement-free peering.
    PeerPeer,
    /// No commercial semantics (lab topologies).
    Unlabeled,
}

/// An undirected edge between two nodes.
#[derive(Debug, Clone)]
pub struct EdgeSpec {
    /// First endpoint.
    pub a: NodeId,
    /// Second endpoint.
    pub b: NodeId,
    /// Link parameters (used for both directions).
    pub params: LinkParams,
    /// Business relationship, oriented `a` → `b` per [`Relationship`].
    pub rel: Relationship,
}

/// A static topology: node count plus an edge list.
///
/// An adjacency index (edge indices per node, in insertion order) backs all
/// neighborhood queries, so `neighbors`/`are_adjacent`/`degree`/
/// `relationship` cost O(degree) instead of O(edges) — the difference
/// between seconds and hours when generating and simulating the 1k–10k-node
/// Internet-like graphs the scale experiments use.
#[derive(Debug, Clone, Default)]
pub struct Topology {
    nodes: usize,
    edges: Vec<EdgeSpec>,
    /// Per-node indices into `edges`, in edge insertion order.
    adj: Vec<Vec<u32>>,
}

impl Topology {
    /// An empty topology with `n` nodes and no edges.
    pub fn with_nodes(n: usize) -> Self {
        Topology {
            nodes: n,
            edges: Vec::new(),
            adj: vec![Vec::new(); n],
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes
    }

    /// True when the topology has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes == 0
    }

    /// All edges.
    pub fn edges(&self) -> &[EdgeSpec] {
        &self.edges
    }

    /// All node ids.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes as u32).map(NodeId)
    }

    /// Add an undirected edge. Panics on out-of-range endpoints, self-loops
    /// or duplicate edges — topology bugs should fail fast.
    pub fn add_edge(&mut self, a: NodeId, b: NodeId, params: LinkParams, rel: Relationship) {
        assert!(
            a.index() < self.nodes && b.index() < self.nodes,
            "endpoint out of range"
        );
        assert_ne!(a, b, "self loops are not allowed");
        assert!(!self.are_adjacent(a, b), "duplicate edge {a}-{b}");
        let idx = self.edges.len() as u32;
        self.edges.push(EdgeSpec { a, b, params, rel });
        self.adj[a.index()].push(idx);
        self.adj[b.index()].push(idx);
    }

    /// Whether `a` and `b` share an edge.
    pub fn are_adjacent(&self, a: NodeId, b: NodeId) -> bool {
        self.edge_between(a, b).is_some()
    }

    /// The edge connecting `a` and `b` (either orientation), if any.
    pub fn edge_between(&self, a: NodeId, b: NodeId) -> Option<&EdgeSpec> {
        // Scan the sparser endpoint's incidence list.
        let (n, m) = if self.adj[a.index()].len() <= self.adj[b.index()].len() {
            (a, b)
        } else {
            (b, a)
        };
        self.adj[n.index()]
            .iter()
            .map(|&i| &self.edges[i as usize])
            .find(|e| (e.a == n && e.b == m) || (e.a == m && e.b == n))
    }

    /// Neighbors of `n`, in deterministic (insertion) order.
    pub fn neighbors(&self, n: NodeId) -> Vec<NodeId> {
        self.adj[n.index()]
            .iter()
            .map(|&i| {
                let e = &self.edges[i as usize];
                if e.a == n {
                    e.b
                } else {
                    e.a
                }
            })
            .collect()
    }

    /// The relationship of `n` toward neighbor `m`, from `n`'s point of view.
    /// Returns `None` when not adjacent.
    pub fn relationship(&self, n: NodeId, m: NodeId) -> Option<NeighborRole> {
        let e = self.edge_between(n, m)?;
        Some(if e.a == n {
            match e.rel {
                Relationship::ProviderCustomer => NeighborRole::Customer,
                Relationship::PeerPeer => NeighborRole::Peer,
                Relationship::Unlabeled => NeighborRole::Unlabeled,
            }
        } else {
            match e.rel {
                Relationship::ProviderCustomer => NeighborRole::Provider,
                Relationship::PeerPeer => NeighborRole::Peer,
                Relationship::Unlabeled => NeighborRole::Unlabeled,
            }
        })
    }

    /// Degree of node `n`.
    pub fn degree(&self, n: NodeId) -> usize {
        self.adj[n.index()].len()
    }

    /// Whether the topology is connected (ignoring direction).
    pub fn is_connected(&self) -> bool {
        if self.nodes == 0 {
            return true;
        }
        let mut seen = BTreeSet::new();
        let mut stack = vec![NodeId(0)];
        seen.insert(NodeId(0));
        while let Some(n) = stack.pop() {
            for m in self.neighbors(n) {
                if seen.insert(m) {
                    stack.push(m);
                }
            }
        }
        seen.len() == self.nodes
    }

    /// Render the topology in Graphviz DOT format (the demo GUI view).
    pub fn to_dot(&self, labels: impl Fn(NodeId) -> String) -> String {
        let mut out = String::from("graph topology {\n  layout=neato;\n");
        for n in self.node_ids() {
            out.push_str(&format!("  {} [label=\"{}\"];\n", n.0, labels(n)));
        }
        for e in &self.edges {
            let style = match e.rel {
                Relationship::ProviderCustomer => " [dir=forward, color=blue]",
                Relationship::PeerPeer => " [style=dashed, color=gray]",
                Relationship::Unlabeled => "",
            };
            out.push_str(&format!("  {} -- {}{};\n", e.a.0, e.b.0, style));
        }
        out.push_str("}\n");
        out
    }
}

/// How a neighbor relates to *this* node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NeighborRole {
    /// The neighbor pays us for transit.
    Customer,
    /// We pay the neighbor for transit.
    Provider,
    /// Settlement-free peer.
    Peer,
    /// No commercial semantics.
    Unlabeled,
}

/// Builders for standard lab topologies.
impl Topology {
    /// A path `0 - 1 - … - (n-1)`.
    pub fn line(n: usize, params: LinkParams) -> Self {
        let mut t = Topology::with_nodes(n);
        for i in 1..n {
            t.add_edge(
                NodeId(i as u32 - 1),
                NodeId(i as u32),
                params.clone(),
                Relationship::Unlabeled,
            );
        }
        t
    }

    /// A cycle of `n >= 3` nodes.
    pub fn ring(n: usize, params: LinkParams) -> Self {
        assert!(n >= 3, "ring needs at least 3 nodes");
        let mut t = Topology::line(n, params.clone());
        t.add_edge(
            NodeId(n as u32 - 1),
            NodeId(0),
            params,
            Relationship::Unlabeled,
        );
        t
    }

    /// A star with node 0 at the center.
    pub fn star(n: usize, params: LinkParams) -> Self {
        let mut t = Topology::with_nodes(n);
        for i in 1..n {
            t.add_edge(
                NodeId(0),
                NodeId(i as u32),
                params.clone(),
                Relationship::Unlabeled,
            );
        }
        t
    }

    /// Every pair connected.
    pub fn full_mesh(n: usize, params: LinkParams) -> Self {
        let mut t = Topology::with_nodes(n);
        for i in 0..n {
            for j in (i + 1)..n {
                t.add_edge(
                    NodeId(i as u32),
                    NodeId(j as u32),
                    params.clone(),
                    Relationship::Unlabeled,
                );
            }
        }
        t
    }
}

/// Parameters for the Internet-like AS-graph generator.
#[derive(Debug, Clone)]
pub struct InternetParams {
    /// Number of tier-1 ASes (fully meshed by peering).
    pub tier1: usize,
    /// Providers attached to each subsequent AS: sampled in `[1, max_providers]`.
    pub max_providers: usize,
    /// Probability of adding an extra peer–peer edge between two mid-degree nodes.
    pub peering_prob: f64,
    /// Median wide-area latency.
    pub median_latency: SimDuration,
}

impl Default for InternetParams {
    fn default() -> Self {
        InternetParams {
            tier1: 3,
            max_providers: 2,
            peering_prob: 0.15,
            median_latency: SimDuration::from_millis(20),
        }
    }
}

impl Topology {
    /// Generate an Internet-like AS topology of `n` nodes: a tier-1 clique,
    /// preferential-attachment customer–provider edges, and sparse lateral
    /// peering. Deterministic in `rng`.
    pub fn internet_like(n: usize, p: &InternetParams, rng: &mut SimRng) -> Self {
        assert!(n >= p.tier1.max(1), "need at least tier1 nodes");
        let mut t = Topology::with_nodes(n);
        let wan = || LinkParams::internet_like(p.median_latency);

        // Tier-1 clique: peers of each other.
        for i in 0..p.tier1 {
            for j in (i + 1)..p.tier1 {
                t.add_edge(
                    NodeId(i as u32),
                    NodeId(j as u32),
                    wan(),
                    Relationship::PeerPeer,
                );
            }
        }

        // Preferential attachment for everyone else: pick 1..=max_providers
        // distinct providers among already-placed nodes, weighted by degree+1.
        for i in p.tier1..n {
            let want = 1 + rng.index(p.max_providers);
            let mut chosen: BTreeSet<NodeId> = BTreeSet::new();
            let mut guard = 0;
            while chosen.len() < want.min(i) && guard < 64 {
                guard += 1;
                let total: usize = (0..i).map(|j| t.degree(NodeId(j as u32)) + 1).sum();
                let mut pick = rng.index(total.max(1));
                let mut provider = NodeId(0);
                for j in 0..i {
                    let w = t.degree(NodeId(j as u32)) + 1;
                    if pick < w {
                        provider = NodeId(j as u32);
                        break;
                    }
                    pick -= w;
                }
                chosen.insert(provider);
            }
            for provider in chosen {
                // provider -> customer edge.
                t.add_edge(
                    provider,
                    NodeId(i as u32),
                    wan(),
                    Relationship::ProviderCustomer,
                );
            }
        }

        // Sparse lateral peering between non-tier-1 nodes of similar tier.
        for i in p.tier1..n {
            for j in (i + 1)..n {
                if !t.are_adjacent(NodeId(i as u32), NodeId(j as u32)) && rng.chance(p.peering_prob)
                {
                    t.add_edge(
                        NodeId(i as u32),
                        NodeId(j as u32),
                        wan(),
                        Relationship::PeerPeer,
                    );
                }
            }
        }
        t
    }

    /// The fixed 27-router topology of the paper's Figure 1 demo:
    /// 3 tier-1 ASes in a peering clique, 8 tier-2 ASes multi-homed to two
    /// tier-1s (with lateral peering), and 16 stub ASes under tier-2
    /// providers. Fully deterministic.
    pub fn demo27() -> Self {
        let mut t = Topology::with_nodes(27);
        let wan = |ms: u64| LinkParams::internet_like(SimDuration::from_millis(ms));

        // Tier-1: nodes 0,1,2 — clique.
        for i in 0..3u32 {
            for j in (i + 1)..3 {
                t.add_edge(NodeId(i), NodeId(j), wan(15), Relationship::PeerPeer);
            }
        }
        // Tier-2: nodes 3..=10, each with two tier-1 providers.
        for k in 0..8u32 {
            let n = 3 + k;
            let p1 = NodeId(k % 3);
            let p2 = NodeId((k + 1) % 3);
            t.add_edge(p1, NodeId(n), wan(20), Relationship::ProviderCustomer);
            t.add_edge(p2, NodeId(n), wan(25), Relationship::ProviderCustomer);
        }
        // Lateral tier-2 peering ring (every second pair).
        for k in (0..8u32).step_by(2) {
            let a = NodeId(3 + k);
            let b = NodeId(3 + (k + 1) % 8);
            if !t.are_adjacent(a, b) {
                t.add_edge(a, b, wan(10), Relationship::PeerPeer);
            }
        }
        // Stubs: nodes 11..=26, each under one or two tier-2 providers.
        for k in 0..16u32 {
            let n = 11 + k;
            let p1 = NodeId(3 + (k % 8));
            t.add_edge(p1, NodeId(n), wan(8), Relationship::ProviderCustomer);
            if k % 3 == 0 {
                let p2 = NodeId(3 + ((k + 4) % 8));
                if !t.are_adjacent(p2, NodeId(n)) {
                    t.add_edge(p2, NodeId(n), wan(12), Relationship::ProviderCustomer);
                }
            }
        }
        debug_assert!(t.is_connected());
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p() -> LinkParams {
        LinkParams::default()
    }

    #[test]
    fn line_shape() {
        let t = Topology::line(4, p());
        assert_eq!(t.len(), 4);
        assert_eq!(t.edges().len(), 3);
        assert!(t.are_adjacent(NodeId(0), NodeId(1)));
        assert!(!t.are_adjacent(NodeId(0), NodeId(2)));
        assert!(t.is_connected());
    }

    #[test]
    fn ring_closes_the_loop() {
        let t = Topology::ring(5, p());
        assert_eq!(t.edges().len(), 5);
        assert!(t.are_adjacent(NodeId(4), NodeId(0)));
        assert_eq!(t.degree(NodeId(2)), 2);
    }

    #[test]
    fn star_has_center() {
        let t = Topology::star(6, p());
        assert_eq!(t.degree(NodeId(0)), 5);
        assert_eq!(t.degree(NodeId(3)), 1);
    }

    #[test]
    fn full_mesh_edge_count() {
        let t = Topology::full_mesh(6, p());
        assert_eq!(t.edges().len(), 15);
        assert!(t.is_connected());
    }

    #[test]
    #[should_panic(expected = "duplicate edge")]
    fn duplicate_edges_rejected() {
        let mut t = Topology::with_nodes(2);
        t.add_edge(NodeId(0), NodeId(1), p(), Relationship::Unlabeled);
        t.add_edge(NodeId(1), NodeId(0), p(), Relationship::Unlabeled);
    }

    #[test]
    #[should_panic(expected = "self loops")]
    fn self_loops_rejected() {
        let mut t = Topology::with_nodes(2);
        t.add_edge(NodeId(1), NodeId(1), p(), Relationship::Unlabeled);
    }

    #[test]
    fn relationship_orientation() {
        let mut t = Topology::with_nodes(2);
        t.add_edge(NodeId(0), NodeId(1), p(), Relationship::ProviderCustomer);
        assert_eq!(
            t.relationship(NodeId(0), NodeId(1)),
            Some(NeighborRole::Customer)
        );
        assert_eq!(
            t.relationship(NodeId(1), NodeId(0)),
            Some(NeighborRole::Provider)
        );
        assert_eq!(t.relationship(NodeId(0), NodeId(0)), None);
    }

    #[test]
    fn demo27_shape() {
        let t = Topology::demo27();
        assert_eq!(t.len(), 27);
        assert!(t.is_connected());
        // Tier-1 clique intact.
        assert!(t.are_adjacent(NodeId(0), NodeId(1)));
        assert!(t.are_adjacent(NodeId(1), NodeId(2)));
        assert!(t.are_adjacent(NodeId(0), NodeId(2)));
        // Every stub has at least one provider.
        for k in 11..27u32 {
            assert!(t.degree(NodeId(k)) >= 1, "stub {k} disconnected");
        }
        // Deterministic: two calls agree.
        let t2 = Topology::demo27();
        assert_eq!(t.edges().len(), t2.edges().len());
    }

    #[test]
    fn internet_like_is_connected_and_deterministic() {
        let mut r1 = SimRng::seed_from_u64(77);
        let mut r2 = SimRng::seed_from_u64(77);
        let params = InternetParams::default();
        let t1 = Topology::internet_like(40, &params, &mut r1);
        let t2 = Topology::internet_like(40, &params, &mut r2);
        assert!(t1.is_connected());
        assert_eq!(t1.edges().len(), t2.edges().len());
        for (e1, e2) in t1.edges().iter().zip(t2.edges()) {
            assert_eq!((e1.a, e1.b), (e2.a, e2.b));
        }
    }

    #[test]
    fn internet_like_has_provider_edges() {
        let mut rng = SimRng::seed_from_u64(5);
        let t = Topology::internet_like(30, &InternetParams::default(), &mut rng);
        let pc = t
            .edges()
            .iter()
            .filter(|e| e.rel == Relationship::ProviderCustomer)
            .count();
        let pp = t
            .edges()
            .iter()
            .filter(|e| e.rel == Relationship::PeerPeer)
            .count();
        assert!(
            pc >= 27,
            "expected at least one provider edge per non-tier1 node"
        );
        assert!(pp >= 3, "tier-1 clique should peer");
    }

    #[test]
    fn dot_rendering_mentions_every_node() {
        let t = Topology::demo27();
        let dot = t.to_dot(|n| format!("AS{}", 65000 + n.0));
        for n in 0..27 {
            assert!(dot.contains(&format!("AS{}", 65000 + n)));
        }
        assert!(dot.starts_with("graph topology {"));
    }
}
