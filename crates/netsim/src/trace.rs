//! Structured execution traces and aggregate counters.
//!
//! The trace is the substrate for DiCE's property checkers and for the demo
//! rendering: a bounded ring of structured events plus always-on counters
//! that never drop data.

use crate::node::{DownReason, NodeId};
use crate::time::SimTime;

/// One traced event.
#[derive(Debug, Clone)]
pub struct TraceEvent {
    /// When the event happened.
    pub t: SimTime,
    /// What happened.
    pub kind: TraceKind,
}

/// Event taxonomy. Variant fields are self-describing (`src`/`dst`
/// endpoints, payload sizes, snapshot ids).
#[derive(Debug, Clone)]
#[allow(missing_docs)]
pub enum TraceKind {
    /// A data frame was handed to the channel.
    Sent {
        src: NodeId,
        dst: NodeId,
        bytes: usize,
    },
    /// A data frame was delivered to its destination handler.
    Delivered {
        src: NodeId,
        dst: NodeId,
        bytes: usize,
    },
    /// A session came up.
    SessionUp { a: NodeId, b: NodeId },
    /// A session went down.
    SessionDown {
        a: NodeId,
        b: NodeId,
        reason: DownReason,
    },
    /// A timer fired at a node.
    TimerFired { node: NodeId, token: u64 },
    /// A node crashed.
    NodeCrashed { node: NodeId, reason: String },
    /// A snapshot marker was forwarded on a channel.
    MarkerSent {
        src: NodeId,
        dst: NodeId,
        snapshot: u32,
    },
    /// A consistent snapshot completed.
    SnapshotComplete { snapshot: u32 },
    /// Free-form annotation emitted by a node handler.
    Node {
        node: NodeId,
        tag: &'static str,
        detail: String,
    },
}

/// Aggregate counters, maintained regardless of trace capacity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraceStats {
    /// Data frames sent (including quiet sends).
    pub msgs_sent: u64,
    /// Data frames delivered.
    pub msgs_delivered: u64,
    /// Total payload bytes delivered.
    pub bytes_delivered: u64,
    /// Timer firings.
    pub timers_fired: u64,
    /// Session transitions to Up.
    pub sessions_up: u64,
    /// Session transitions to Down.
    pub sessions_down: u64,
    /// Node crashes.
    pub crashes: u64,
    /// Events dropped from the bounded ring.
    pub dropped_events: u64,
}

/// Bounded trace buffer plus counters.
#[derive(Debug, Clone)]
pub struct Trace {
    events: std::collections::VecDeque<TraceEvent>,
    capacity: usize,
    stats: TraceStats,
}

impl Default for Trace {
    fn default() -> Self {
        Trace::with_capacity(64 * 1024)
    }
}

impl Trace {
    /// A trace retaining at most `capacity` events (counters are unbounded).
    pub fn with_capacity(capacity: usize) -> Self {
        Trace {
            events: std::collections::VecDeque::new(),
            capacity,
            stats: TraceStats::default(),
        }
    }

    /// Reset events and counters while keeping the ring's allocation —
    /// used when a pooled simulator is rebound to a new shadow snapshot
    /// ([`Simulator::reset_from_shadow`](crate::sim::Simulator::reset_from_shadow)).
    pub fn clear(&mut self) {
        self.events.clear();
        self.stats = TraceStats::default();
    }

    /// Record an event, updating counters and evicting the oldest event if
    /// at capacity.
    pub fn push(&mut self, t: SimTime, kind: TraceKind) {
        match &kind {
            TraceKind::Sent { .. } => self.stats.msgs_sent += 1,
            TraceKind::Delivered { bytes, .. } => {
                self.stats.msgs_delivered += 1;
                self.stats.bytes_delivered += *bytes as u64;
            }
            TraceKind::TimerFired { .. } => self.stats.timers_fired += 1,
            TraceKind::SessionUp { .. } => self.stats.sessions_up += 1,
            TraceKind::SessionDown { .. } => self.stats.sessions_down += 1,
            TraceKind::NodeCrashed { .. } => self.stats.crashes += 1,
            _ => {}
        }
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.stats.dropped_events += 1;
        }
        self.events.push_back(TraceEvent { t, kind });
    }

    /// All retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the retained buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Aggregate counters.
    pub fn stats(&self) -> TraceStats {
        self.stats
    }

    /// Node annotations with the given tag, oldest first.
    pub fn annotations<'a>(
        &'a self,
        tag: &'a str,
    ) -> impl Iterator<Item = (SimTime, NodeId, &'a str)> + 'a {
        self.events.iter().filter_map(move |e| match &e.kind {
            TraceKind::Node {
                node,
                tag: t,
                detail,
            } if *t == tag => Some((e.t, *node, detail.as_str())),
            _ => None,
        })
    }

    /// Drop all retained events, keeping counters.
    pub fn clear_events(&mut self) {
        self.events.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_track_kinds() {
        let mut tr = Trace::default();
        tr.push(
            SimTime::ZERO,
            TraceKind::Sent {
                src: NodeId(0),
                dst: NodeId(1),
                bytes: 10,
            },
        );
        tr.push(
            SimTime::ZERO,
            TraceKind::Delivered {
                src: NodeId(0),
                dst: NodeId(1),
                bytes: 10,
            },
        );
        tr.push(
            SimTime::ZERO,
            TraceKind::TimerFired {
                node: NodeId(0),
                token: 1,
            },
        );
        let s = tr.stats();
        assert_eq!(s.msgs_sent, 1);
        assert_eq!(s.msgs_delivered, 1);
        assert_eq!(s.bytes_delivered, 10);
        assert_eq!(s.timers_fired, 1);
        assert_eq!(tr.len(), 3);
    }

    #[test]
    fn ring_evicts_but_counts() {
        let mut tr = Trace::with_capacity(2);
        for i in 0..5 {
            tr.push(
                SimTime::from_nanos(i),
                TraceKind::Sent {
                    src: NodeId(0),
                    dst: NodeId(1),
                    bytes: 1,
                },
            );
        }
        assert_eq!(tr.len(), 2);
        assert_eq!(tr.stats().msgs_sent, 5);
        assert_eq!(tr.stats().dropped_events, 3);
        // Oldest retained is event #3.
        assert_eq!(tr.events().next().unwrap().t, SimTime::from_nanos(3));
    }

    #[test]
    fn annotations_filter_by_tag() {
        let mut tr = Trace::default();
        tr.push(
            SimTime::ZERO,
            TraceKind::Node {
                node: NodeId(2),
                tag: "best",
                detail: "10.0.0.0/8".into(),
            },
        );
        tr.push(
            SimTime::ZERO,
            TraceKind::Node {
                node: NodeId(2),
                tag: "other",
                detail: "x".into(),
            },
        );
        let hits: Vec<_> = tr.annotations("best").collect();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].1, NodeId(2));
        assert_eq!(hits[0].2, "10.0.0.0/8");
    }
}
