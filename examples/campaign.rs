//! Campaign walk-through: sweep DiCE across a whole federation instead of
//! hand-picking one (explorer, peer) pair.
//!
//! ```sh
//! cargo run --release --example campaign
//! ```
//!
//! A `Campaign` discovers every eligible `(explorer, inject peer)` pair
//! through the SUT catalog, snapshots once per explorer, fans validation
//! out over a worker pool, and aggregates everything into one
//! serializable report: fault union, per-class detection latency, and
//! branch-coverage union — globally and per explorer.

use dice_system::dice::{scenarios, Campaign};
use dice_system::netsim::{NodeId, SimDuration, SimTime};

fn main() {
    // The paper's Figure 1 deployment: 27 BGP routers, Gao–Rexford
    // policies, one originated prefix per router.
    let mut live = scenarios::demo27_system(2026);
    live.run_until_quiet(
        SimDuration::from_secs(5),
        SimTime::from_nanos(300_000_000_000),
    );
    println!("live federation converged at t={}", live.now());

    // Discovery happens at construction: every explorable node, every
    // configured peer. The builder then narrows and budgets the sweep.
    let campaign = Campaign::new(&live)
        .explorers([NodeId(0), NodeId(5), NodeId(11), NodeId(12)]) // one per tier + two stubs
        .max_peers_per_explorer(2)
        .rounds(1)
        .executions(48)
        .validate_top(6)
        .horizon(SimDuration::from_secs(30))
        .workers(4);
    println!(
        "{} eligible pairs federation-wide; sweeping {:?}",
        campaign.eligible_pairs().len(),
        campaign
            .sweep_plan()
            .iter()
            .map(|(e, peers)| format!("{e}×{}", peers.len()))
            .collect::<Vec<_>>()
    );

    let report = campaign.run(&mut live).expect("campaign completes");

    println!("\n{}", report.summary());
    println!("\nper-explorer coverage:");
    for e in &report.per_explorer {
        println!(
            "  {} ({}): {} rounds, {} branch-polarities, {} execs, {} faults",
            e.explorer, e.kind, e.rounds, e.coverage, e.executions, e.faults
        );
    }
    for d in &report.detection {
        println!(
            "first {} detection: round {} ({} via {}), input #{}, {}ms into the campaign",
            d.class, d.round, d.explorer, d.inject_peer, d.input_ordinal, d.wall_ms_cum
        );
    }
    if report.faults.is_empty() {
        println!("\nno faults — the demo federation is healthy, as expected.");
    }

    // The whole report serializes for CI perf trajectories.
    let json = serde_json::to_string_pretty(&report).expect("serializable");
    println!("\nreport JSON is {} bytes (see CampaignReport)", json.len());
}
