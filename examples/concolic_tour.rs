//! A tour of the concolic engine on the real BGP UPDATE handler: watch the
//! solver steer messages through parser validation, the interpreted import
//! policy, and into the seeded defect.
//!
//! ```sh
//! cargo run --release --example concolic_tour
//! ```

use dice_system::bgp::{net, Asn, RouterConfig, RouterId};
use dice_system::concolic::{explore, ExploreConfig, RunStatus, Strategy};
use dice_system::dice::{mark_update, GrammarConfig, SymbolicUpdateHandler, UpdateGrammar};
use dice_system::netsim::NodeId;

fn main() {
    // A router whose import policy only admits 10.0.0.0/8{8,24} and whose
    // build carries the seeded unknown-attribute defect.
    let mut cfg = RouterConfig::minimal(Asn(65001), RouterId(0x0A000001)).with_neighbor(
        NodeId(2),
        Asn(65002),
        "imp",
        "all",
    );
    cfg = cfg.with_policy(dice_system::bgp::Policy {
        name: "imp".into(),
        rules: vec![
            dice_system::bgp::Rule {
                matches: vec![dice_system::bgp::Match::PrefixIn(vec![
                    dice_system::bgp::PrefixFilter {
                        net: net("10.0.0.0/8"),
                        min_len: 8,
                        max_len: 24,
                    },
                ])],
                actions: vec![dice_system::bgp::Action::SetLocalPref(200)],
                verdict: Some(dice_system::bgp::Verdict::Accept),
            },
            dice_system::bgp::Rule::reject(vec![dice_system::bgp::Match::Any]),
        ],
        default: dice_system::bgp::Verdict::Reject,
    });
    cfg.bugs.attr_overflow_crash = true;

    let mut grammar = UpdateGrammar::new(GrammarConfig::for_peer(Asn(65002)), 5);
    let seeds = vec![grammar.generate(), grammar.generate_large_unknown()];
    println!(
        "seeds: {} messages ({} bytes total)",
        seeds.len(),
        seeds.iter().map(Vec::len).sum::<usize>()
    );

    for (name, strategy) in [
        ("generational", Strategy::Generational),
        ("dfs", Strategy::Dfs),
    ] {
        let mut handler = SymbolicUpdateHandler::new(cfg.clone(), NodeId(2));
        let report = explore(
            &mut handler,
            &seeds,
            &mark_update,
            &ExploreConfig {
                strategy,
                max_executions: 160,
                ..Default::default()
            },
        );
        println!("\n== {name} search ==");
        println!(
            "executions: {}, distinct paths: {}, branch coverage: {}, solver: {} queries / {} SAT / {} UNSAT",
            report.executions.len(),
            report.distinct_paths,
            report.final_coverage(),
            report.solver.queries,
            report.solver.sat,
            report.solver.unsat,
        );
        let mut rejected_stages = std::collections::BTreeMap::new();
        let mut ok = 0usize;
        for e in &report.executions {
            match &e.status {
                RunStatus::Ok => ok += 1,
                RunStatus::Rejected(stage) => {
                    *rejected_stages.entry(stage.clone()).or_insert(0usize) += 1
                }
                RunStatus::Crash(_) => {}
            }
        }
        println!("accepted inputs: {ok}");
        println!("rejection stages explored:");
        for (stage, count) in &rejected_stages {
            println!("  {stage:<28} x{count}");
        }
        match report.first_crash() {
            Some(i) => {
                let e = &report.executions[i];
                println!(
                    "CRASH found at execution #{i}: {} bytes, status {:?}",
                    e.input.len(),
                    e.status
                );
                // Show the synthesized trigger: the unknown attr type code
                // the solver pushed into the defect window.
                println!("  solver-synthesized input reaches the 0xF0+/0x90+ overflow window");
            }
            None => println!("no crash found (unexpected for this budget)"),
        }
    }
}
