//! The paper's Figure 1 demo: DiCE exploring a 27-router BGP system under
//! Internet-like conditions — 3 tier-1 ASes in a peering clique, 8 tier-2
//! transit ASes, 16 stubs, Gao–Rexford commercial policies, log-normal
//! wide-area latencies.
//!
//! Prints the "GUI" view as a Graphviz DOT graph plus a per-node status
//! table, then runs one exploration round from a tier-2 router.
//!
//! ```sh
//! cargo run --release --example demo27 > demo27.txt
//! ```

use dice_system::bgp::BgpRouter;
use dice_system::dice::{scenarios, DiceConfig, DiceRunner};
use dice_system::netsim::{NodeId, SimDuration, SimTime, Topology};

fn tier(i: u32) -> &'static str {
    match i {
        0..=2 => "tier-1",
        3..=10 => "tier-2",
        _ => "stub",
    }
}

fn main() {
    let topo = Topology::demo27();
    println!("# Figure 1 topology (Graphviz DOT)\n");
    println!(
        "{}",
        topo.to_dot(|n| format!("AS{} ({})", 65000 + n.0, tier(n.0)))
    );

    let mut live = scenarios::demo27_system(27);
    let outcome = live.run_until_quiet(
        SimDuration::from_secs(5),
        SimTime::from_nanos(300_000_000_000),
    );
    println!("# Convergence: {outcome:?} at t={}\n", live.now());

    println!("# Router status");
    println!(
        "{:<6} {:<8} {:<7} {:>9} {:>10} {:>10}",
        "node", "as", "tier", "loc-rib", "upd-rx", "upd-tx"
    );
    for i in 0..27u32 {
        let r = live
            .node(NodeId(i))
            .as_any()
            .downcast_ref::<BgpRouter>()
            .unwrap();
        println!(
            "{:<6} {:<8} {:<7} {:>9} {:>10} {:>10}",
            i,
            format!("AS{}", 65000 + i),
            tier(i),
            r.loc_rib().len(),
            r.stats().updates_rx,
            r.stats().updates_tx
        );
    }

    // Explore from tier-2 router 5, impersonating its tier-1 provider.
    let explorer = NodeId(5);
    let provider = NodeId(2); // AS65002 is a provider of node 5 in demo27
    let mut cfg = DiceConfig::new(explorer, provider);
    cfg.concolic_executions = 128;
    cfg.validate_top = 16;
    cfg.workers = 4;
    cfg.horizon = SimDuration::from_secs(90);
    let mut dice = DiceRunner::from_sim(cfg, &live);

    println!("\n# DiCE round from node {explorer} (inputs impersonate provider {provider})");
    let report = dice.run_round(&mut live).expect("round runs");
    println!("{}", report.summary());
    println!(
        "snapshot: {} nodes checkpointed, {} in-flight messages, ~{}KB, CL protocol took {} of simulated time",
        report.snapshot.nodes,
        report.snapshot.in_flight,
        report.snapshot.bytes / 1024,
        SimDuration::from_nanos(report.snapshot.sim_duration_nanos),
    );
    println!(
        "exploration: {} paths / {} executions, {} branch-polarities, {} solver queries",
        report.distinct_paths, report.executions, report.branch_coverage, report.solver_queries
    );
    println!("faults: {}", report.faults.len());
    for f in &report.faults {
        println!("  [{}] node {}: {}", f.class, f.node, f.detail);
    }
    println!(
        "verdicts: {} published, {} failing — the healthy demo stays clean",
        report.verdicts_total, report.verdicts_failed
    );
}
