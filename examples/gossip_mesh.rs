//! Guided tour: DiCE testing a protocol that is not BGP.
//!
//! A six-node epidemic pub/sub mesh runs live; one node carries a seeded
//! digest-count defect (a missing bounds check in the anti-entropy path).
//! A `Campaign` sweeps every `(explorer, peer)` pair through the same
//! snapshot → explore → validate → check pipeline used for BGP routers —
//! no gossip-specific code anywhere in the runtime, only the `gossip_sut`
//! probe in the catalog — and the concolic layer synthesizes the digest
//! frame that crashes the buggy build.
//!
//! ```sh
//! cargo run --release --example gossip_mesh
//! ```

use dice_system::dice::{scenarios, Campaign, FaultClass};
use dice_system::netsim::{SimDuration, SimTime};

fn main() {
    // A live gossip mesh: node i publishes on topic i, everyone
    // subscribes to everything, node 1 runs the buggy build.
    let mut live = scenarios::buggy_gossip_scenario(6, 7);
    live.run_until_quiet(
        SimDuration::from_secs(5),
        SimTime::from_nanos(120_000_000_000),
    );
    println!("live mesh quiesced at {}", live.now());

    let report = Campaign::new(&live)
        .executions(128)
        .validate_top(8)
        .horizon(SimDuration::from_secs(30))
        .workers(2)
        .pair_workers(2)
        .run(&mut live)
        .expect("campaign runs");

    println!("{}", report.summary());
    for k in &report.per_kind {
        println!(
            "  kind {:>7}: {} rounds, coverage {}, {} faults",
            k.kind, k.rounds, k.coverage, k.faults
        );
    }
    for d in &report.detection {
        println!(
            "  first {} found in round {} (explorer {} via {}), input #{}",
            d.class, d.round, d.explorer, d.inject_peer, d.input_ordinal
        );
    }
    for f in &report.faults {
        println!("  fault @{}: {:?} — {}", f.node, f.class, f.detail);
    }

    assert!(
        report.classes().contains(&FaultClass::ProgrammingError),
        "the seeded digest-count defect must be found online"
    );
    println!("seeded gossip bug found online — heterogeneity seam works");
}
