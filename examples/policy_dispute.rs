//! Policy-conflict scenario: Griffin's BAD GADGET — three ASes whose
//! locally sane preferences have no globally stable solution, producing
//! persistent route oscillation. Each domain's policy is private; no single
//! participant can see the conflict. DiCE detects the *symptom* (best-route
//! flapping beyond threshold, no quiescence) from local checks only.
//!
//! ```sh
//! cargo run --release --example policy_dispute
//! ```

use dice_system::bgp::BgpRouter;
use dice_system::dice::{scenarios, DiceConfig, DiceRunner, FaultClass};
use dice_system::netsim::{NodeId, SimDuration, SimTime};

fn main() {
    // Center node 0 originates the contested prefix; ring nodes 1,2,3 each
    // prefer the path through their clockwise neighbor (LOCAL_PREF 200)
    // over the direct route (LOCAL_PREF 100), accepting only 2-hop paths.
    let mut live = scenarios::bad_gadget_scenario(99);
    live.run_until(SimTime::from_nanos(20_000_000_000));

    println!(
        "t={}: the gadget is live. Flip counts on {}:",
        live.now(),
        scenarios::gadget_prefix()
    );
    for i in 1..=3u32 {
        let r = live
            .node(NodeId(i))
            .as_any()
            .downcast_ref::<BgpRouter>()
            .unwrap();
        let flips = r
            .loc_rib()
            .flips
            .get(&scenarios::gadget_prefix())
            .copied()
            .unwrap_or(0);
        println!("  ring node {i}: {flips} best-route changes so far");
    }

    let mut cfg = DiceConfig::new(NodeId(1), NodeId(0));
    cfg.concolic_executions = 32;
    cfg.validate_top = 6;
    cfg.horizon = SimDuration::from_secs(120);
    cfg.oscillation_threshold = 20;
    let mut dice = DiceRunner::from_sim(cfg, &live);

    println!("\nrunning a DiCE round over the oscillating system…");
    let report = dice.run_round(&mut live).expect("round runs");

    println!("\n{}", report.summary());
    for f in &report.faults {
        println!("  [{}] node {}: {}", f.class, f.node, f.detail);
    }
    assert!(
        report.classes().contains(&FaultClass::PolicyConflict),
        "the dispute cycle must be detected as a policy conflict"
    );
    println!(
        "\nverdicts crossed domain boundaries: {} total, {} failing — \
         each domain shared only pass/fail + the flapping prefix, never its policy.",
        report.verdicts_total, report.verdicts_failed
    );
}
