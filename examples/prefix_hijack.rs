//! Operator-mistake scenario: a prefix hijack by misconfiguration,
//! detected through DiCE's privacy-preserving origin attestations.
//!
//! Node 0 legitimately owns 10.10.0.0/16. An operator on node 2 fat-fingers
//! a config change and starts originating the covered 10.10.0.0/24 — a
//! more-specific hijack that silently draws traffic. No router crashes, no
//! session flaps: classic silent misconfiguration.
//!
//! DiCE detects it because every domain attests its owned prefixes as
//! salted SHA-256 digests; checkers verify each selected route's
//! (prefix, origin) pair against the registry without ever seeing another
//! domain's configuration.
//!
//! ```sh
//! cargo run --release --example prefix_hijack
//! ```

use dice_system::bgp::BgpRouter;
use dice_system::dice::{scenarios, DiceConfig, DiceRunner, FaultClass};
use dice_system::netsim::{NodeId, SimTime};

fn main() {
    let mut live = scenarios::hijack_scenario(77);
    live.run_until(SimTime::from_nanos(10_000_000_000));
    println!(
        "t={}: converged; 10.10.0.0/16 originated by AS65000 (node 0)",
        live.now()
    );

    // DiCE is set up while the system is healthy: the registry records that
    // only node 0 may originate inside 10.10.0.0/16.
    let mut cfg = DiceConfig::new(NodeId(1), NodeId(0));
    cfg.concolic_executions = 48;
    cfg.validate_top = 8;
    let mut dice = DiceRunner::from_sim(cfg, &live);

    let healthy = dice.run_round(&mut live).expect("round runs");
    println!(
        "round {} (healthy): {} faults, {} verdicts ({} failed)",
        healthy.round,
        healthy.faults.len(),
        healthy.verdicts_total,
        healthy.verdicts_failed
    );
    assert!(healthy.faults.is_empty(), "no faults before the mistake");

    // The operator mistake: node 2 announces a /24 it does not own.
    println!("\n>> operator on node 2 announces 10.10.0.0/24 (not owned) <<");
    scenarios::apply_hijack(&mut live);
    live.run_until(SimTime::from_nanos(25_000_000_000));

    // The hijack is live: node 1 now routes the /24 toward AS65002.
    let r1 = live
        .node(NodeId(1))
        .as_any()
        .downcast_ref::<BgpRouter>()
        .unwrap();
    let best = r1
        .loc_rib()
        .best(&scenarios::hijack_prefix())
        .expect("hijack installed");
    println!(
        "node 1 best route for {}: origin {}",
        scenarios::hijack_prefix(),
        best.route.attrs.as_path.origin_asn().unwrap()
    );

    // Next DiCE round catches it.
    let caught = dice.run_round(&mut live).expect("round runs");
    println!("\nround {} report:", caught.round);
    for f in &caught.faults {
        println!("  [{}] node {}: {}", f.class, f.node, f.detail);
    }
    assert!(
        caught.classes().contains(&FaultClass::OperatorMistake),
        "hijack must be classified as an operator mistake"
    );
    let ordinal = caught
        .detection_input_ordinal
        .get("operator-mistake")
        .copied()
        .unwrap_or(0);
    println!(
        "\ndetected after {ordinal} validated clone(s) — a state fault, visible even \
         on the un-perturbed clone."
    );
}
