//! Quickstart: run DiCE against a live BGP system and watch it find a
//! seeded parser bug, online, without disturbing the deployment.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use dice_system::dice::{scenarios, DiceConfig, DiceRunner};
use dice_system::netsim::{NodeId, SimTime};

fn main() {
    // A live 3-router system: 0 — 1 — 2. The middle router runs a build
    // with a BIRD-style defect in its UPDATE handler (an unknown-attribute
    // length overflow). Nothing is wrong *yet*: regular traffic never
    // exercises the broken path.
    let mut live = scenarios::buggy_parser_scenario(2026);
    live.run_until(SimTime::from_nanos(10_000_000_000));
    println!("live system converged at t={}", live.now());
    for i in 0..3u32 {
        let r = live
            .node(NodeId(i))
            .as_any()
            .downcast_ref::<dice_system::bgp::BgpRouter>()
            .unwrap();
        println!(
            "  node {i}: {} routes in Loc-RIB, {} updates received",
            r.loc_rib().len(),
            r.stats().updates_rx
        );
    }

    // DiCE: explore node 1's behavior, impersonating inputs from peer 0.
    let mut cfg = DiceConfig::new(NodeId(1), NodeId(0));
    cfg.concolic_executions = 192;
    cfg.validate_top = 24;
    cfg.workers = 4;
    let mut dice = DiceRunner::from_sim(cfg, &live);

    println!("\nrunning one DiCE round (snapshot → concolic explore → validate → check)…");
    let report = dice.run_round(&mut live).expect("round completes");

    println!("\n{}", report.summary());
    println!(
        "snapshot: {} nodes, {} in-flight msgs, ~{} bytes, {}us wall",
        report.snapshot.nodes,
        report.snapshot.in_flight,
        report.snapshot.bytes,
        report.snapshot.wall_micros
    );
    println!(
        "exploration: {} executions, {} distinct paths, {} branch-polarities covered, {} solver queries ({} SAT)",
        report.executions,
        report.distinct_paths,
        report.branch_coverage,
        report.solver_queries,
        report.solver_sat
    );

    println!("\nfaults detected:");
    for f in &report.faults {
        println!("  [{}] node {}: {}", f.class, f.node, f.detail);
    }
    assert!(
        !report.faults.is_empty(),
        "the seeded bug should have been found"
    );

    // The live system is untouched: DiCE explored isolated clones.
    assert!(live.crashed(NodeId(1)).is_none());
    println!("\nlive system unharmed (node 1 still running) — exploration was isolated.");
}
