//! # dice-system — the complete DiCE stack under one roof
//!
//! Facade crate re-exporting the four workspace layers:
//!
//! | Layer | Crate | What it is |
//! |---|---|---|
//! | [`netsim`] | `dice-netsim` | deterministic discrete-event network simulator with in-band Chandy–Lamport snapshots and fault injection |
//! | [`bgp`] | `dice-bgp` | BIRD-like BGP-4 router: RFC 4271 wire format, session FSM, RIBs, decision process, interpreted policy engine, BIRD-lite config language |
//! | [`gossip`] | `dice-gossip` | epidemic publish/subscribe node: rumor mongering with per-peer infection state, anti-entropy digests, TTL garbage collection — the second real protocol under the SUT seam |
//! | [`concolic`] | `dice-concolic` | Oasis-like concolic execution engine: symbolic bytes, path constraints, byte-domain solver, generational search |
//! | [`dice`] | `dice-core` | DiCE itself: shadow snapshots, the instrumented handler twins (BGP UPDATE + gossip frame), grammar fuzzing, property checkers, the privacy-preserving information-sharing interface |
//!
//! See `examples/quickstart.rs` for the five-minute tour, and DESIGN.md /
//! EXPERIMENTS.md for the paper-reproduction map.

#![forbid(unsafe_code)]

pub use dice_bgp as bgp;
pub use dice_concolic as concolic;
pub use dice_core as dice;
pub use dice_gossip as gossip;
pub use dice_netsim as netsim;
