//! Tier-1 gate: the whole workspace must be `dice-lint`-clean.
//!
//! This is the same scan `cargo run -p dice-lint` performs in CI, run as
//! a test so the invariants (seam containment, determinism zone,
//! unordered iteration, lock hygiene, panic freedom, hot-path
//! allocations, cfg pairing, schema drift) break the build the moment a
//! PR violates one without a justified allow annotation.

use std::path::Path;

#[test]
fn workspace_is_lint_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let report = dice_lint::scan_workspace(root).expect("workspace scan succeeds");
    assert!(
        report.is_clean(),
        "dice-lint found unallowed violations:\n{}",
        report.to_table()
    );
    // A clean report on an empty scan would prove nothing.
    assert!(
        report.files_scanned > 50,
        "suspiciously few files scanned ({}) — did the walker break?",
        report.files_scanned
    );
    // Every suppression must carry its parsed justification.
    assert!(
        !report.allowed.is_empty(),
        "the tree has known annotated accounting sites; none were seen"
    );
    for f in &report.allowed {
        assert!(
            f.reason.as_deref().is_some_and(|r| !r.is_empty()),
            "allowed finding without a justification: {}:{} {}",
            f.path,
            f.line,
            f.rule
        );
    }
    // The scan is a tier-1 gate, so it must stay cheap: the item graph
    // and call-edge resolution are linear passes, and 5 s of headroom is
    // an order of magnitude above what the tree needs today.
    assert!(
        report.scan_wall_ms < 5000,
        "lint scan took {} ms — the semantic rules regressed",
        report.scan_wall_ms
    );
}
