//! End-to-end integration tests: the full DiCE stack (netsim + bgp +
//! concolic + core) exercised through the public facade.

use dice_system::bgp::BgpRouter;
use dice_system::dice::{scenarios, DiceConfig, DiceRunner, FaultClass};
use dice_system::netsim::{NodeId, QuietOutcome, SimDuration, SimTime};

#[test]
fn detects_all_three_fault_classes() {
    // Class 1: programming error.
    let mut live = scenarios::buggy_parser_scenario(1001);
    live.run_until(SimTime::from_nanos(10_000_000_000));
    let mut cfg = DiceConfig::new(NodeId(1), NodeId(0));
    cfg.concolic_executions = 192;
    cfg.validate_top = 24;
    cfg.workers = 4;
    let mut dice = DiceRunner::from_sim(cfg, &live);
    let r = dice.run_round(&mut live).unwrap();
    assert!(
        r.classes().contains(&FaultClass::ProgrammingError),
        "{:?}",
        r.faults
    );

    // Class 2: policy conflict.
    let mut live = scenarios::bad_gadget_scenario(1002);
    live.run_until(SimTime::from_nanos(20_000_000_000));
    let mut cfg = DiceConfig::new(NodeId(2), NodeId(0));
    cfg.concolic_executions = 24;
    cfg.validate_top = 4;
    cfg.horizon = SimDuration::from_secs(120);
    let mut dice = DiceRunner::from_sim(cfg, &live);
    let r = dice.run_round(&mut live).unwrap();
    assert!(
        r.classes().contains(&FaultClass::PolicyConflict),
        "{:?}",
        r.faults
    );

    // Class 3: operator mistake.
    let mut live = scenarios::hijack_scenario(1003);
    live.run_until(SimTime::from_nanos(10_000_000_000));
    let mut cfg = DiceConfig::new(NodeId(1), NodeId(0));
    cfg.concolic_executions = 32;
    cfg.validate_top = 4;
    let mut dice = DiceRunner::from_sim(cfg, &live);
    scenarios::apply_hijack(&mut live);
    live.run_until(SimTime::from_nanos(25_000_000_000));
    let r = dice.run_round(&mut live).unwrap();
    assert!(
        r.classes().contains(&FaultClass::OperatorMistake),
        "{:?}",
        r.faults
    );
}

#[test]
fn demo27_round_is_clean_and_reproducible() {
    let mut live = scenarios::demo27_system(500);
    let quiet = live.run_until_quiet(
        SimDuration::from_secs(5),
        SimTime::from_nanos(300_000_000_000),
    );
    assert_eq!(quiet, QuietOutcome::Quiescent);

    let run = |live: &mut dice_system::netsim::Simulator| {
        let mut cfg = DiceConfig::new(NodeId(5), NodeId(2));
        cfg.concolic_executions = 64;
        cfg.validate_top = 8;
        let mut dice = DiceRunner::from_sim(cfg, live);
        dice.run_round(live).unwrap()
    };
    let r1 = run(&mut live);
    assert!(r1.faults.is_empty(), "healthy demo27: {:?}", r1.faults);
    assert!(r1.distinct_paths > 20);

    // Same starting state (fresh build) gives the same exploration numbers.
    let mut live2 = scenarios::demo27_system(500);
    live2.run_until_quiet(
        SimDuration::from_secs(5),
        SimTime::from_nanos(300_000_000_000),
    );
    let r2 = run(&mut live2);
    assert_eq!(r1.executions, r2.executions);
    assert_eq!(r1.distinct_paths, r2.distinct_paths);
    assert_eq!(r1.branch_coverage, r2.branch_coverage);
}

#[test]
fn repeated_rounds_converge_to_no_new_faults() {
    let mut live = scenarios::buggy_parser_scenario(1004);
    live.run_until(SimTime::from_nanos(10_000_000_000));
    let mut cfg = DiceConfig::new(NodeId(1), NodeId(0));
    cfg.concolic_executions = 160;
    cfg.validate_top = 16;
    let mut dice = DiceRunner::from_sim(cfg, &live);
    let r1 = dice.run_round(&mut live).unwrap();
    let r2 = dice.run_round(&mut live).unwrap();
    // The same (deduplicated) fault set is re-detected each round; the live
    // system itself stays healthy throughout.
    assert_eq!(r1.classes(), r2.classes());
    assert!(live.crashed(NodeId(1)).is_none());
}

#[test]
fn fault_free_round_publishes_only_passing_verdicts() {
    let mut live = scenarios::healthy_line(5, 1005);
    live.run_until(SimTime::from_nanos(20_000_000_000));
    let mut cfg = DiceConfig::new(NodeId(2), NodeId(1));
    cfg.concolic_executions = 64;
    cfg.validate_top = 8;
    cfg.workers = 2;
    let mut dice = DiceRunner::from_sim(cfg, &live);
    let r = dice.run_round(&mut live).unwrap();
    assert!(r.faults.is_empty());
    assert_eq!(r.verdicts_failed, 0);
    assert!(
        r.verdicts_total >= r.validated,
        "each clone publishes verdicts"
    );
}

#[test]
fn exploration_report_exposes_crashing_input() {
    let mut live = scenarios::buggy_parser_scenario(1006);
    live.run_until(SimTime::from_nanos(10_000_000_000));
    let mut cfg = DiceConfig::new(NodeId(1), NodeId(0));
    cfg.concolic_executions = 192;
    let mut dice = DiceRunner::from_sim(cfg, &live);
    let _ = dice.run_round(&mut live).unwrap();
    let exploration = dice.last_exploration().expect("exploration recorded");
    let crash_idx = exploration.first_crash().expect("crash found");
    let crash_input = &exploration.executions[crash_idx].input;

    // The synthesized input is a *decodable* BGP UPDATE whose unknown
    // attribute sits in the defect window.
    let (msg, _) = dice_system::bgp::decode(crash_input).expect("wire-valid");
    match msg {
        dice_system::bgp::Message::Update(u) => {
            let attrs = u.attrs.expect("attrs present");
            assert!(attrs
                .unknown
                .iter()
                .any(|r| r.code >= 0xF0 && r.value.len() >= 0x90));
        }
        other => panic!("expected update, got {other:?}"),
    }

    // Replaying it against a fresh copy of the buggy router crashes it —
    // and the same message against a fixed build is harmless.
    let mut replay = scenarios::buggy_parser_scenario(1006);
    replay.run_until(SimTime::from_nanos(10_000_000_000));
    replay.deliver_direct(NodeId(0), NodeId(1), crash_input);
    assert!(replay.crashed(NodeId(1)).is_some());

    let mut fixed = scenarios::healthy_line(3, 1006);
    fixed.run_until(SimTime::from_nanos(10_000_000_000));
    fixed.deliver_direct(NodeId(0), NodeId(1), crash_input);
    assert!(fixed.crashed(NodeId(1)).is_none());
}

#[test]
fn dice_round_does_not_change_live_routing() {
    let mut live = scenarios::demo27_system(321);
    live.run_until_quiet(
        SimDuration::from_secs(5),
        SimTime::from_nanos(300_000_000_000),
    );
    let fingerprint = |sim: &dice_system::netsim::Simulator| -> Vec<(u32, usize, u64)> {
        sim.topology()
            .node_ids()
            .map(|id| {
                let r = sim.node(id).as_any().downcast_ref::<BgpRouter>().unwrap();
                (id.0, r.loc_rib().len(), r.loc_rib().total_flips())
            })
            .collect()
    };
    let before = fingerprint(&live);
    let mut cfg = DiceConfig::new(NodeId(5), NodeId(2));
    cfg.concolic_executions = 48;
    cfg.validate_top = 8;
    let mut dice = DiceRunner::from_sim(cfg, &live);
    let _ = dice.run_round(&mut live).unwrap();
    assert_eq!(before, fingerprint(&live), "exploration must be isolated");
}
