//! Facade smoke test: every `dice_system::{netsim,bgp,concolic,dice}`
//! re-export resolves and exposes a working symbol from its layer, so a
//! downstream user can depend on `dice-system` alone.

use dice_system::{bgp, concolic, dice, netsim};

#[test]
fn netsim_reexport_builds_and_runs_a_sim() {
    let topo = netsim::Topology::line(
        2,
        netsim::LinkParams::fixed(netsim::SimDuration::from_millis(1)),
    );
    assert_eq!(topo.len(), 2);
    assert!(topo.is_connected());

    // Cross-layer: a scenario built from bgp routers runs on the netsim
    // simulator, all reached through the facade.
    let mut sim = dice::scenarios::healthy_line(3, 1);
    sim.run_until(netsim::SimTime::from_nanos(5_000_000_000));
    assert!(sim.now() >= netsim::SimTime::from_nanos(5_000_000_000));
    let r = sim
        .node(netsim::NodeId(1))
        .as_any()
        .downcast_ref::<bgp::BgpRouter>()
        .expect("scenario nodes are BGP routers");
    assert!(!r.loc_rib().is_empty(), "routes propagate");
}

#[test]
fn bgp_reexport_exposes_wire_codec() {
    let msg = bgp::Message::Notification(bgp::NotificationMsg {
        code: 6,
        subcode: 0,
        data: vec![],
    });
    let bytes = bgp::encode(&msg);
    let (decoded, used) = bgp::decode(&bytes).expect("self-encoded message decodes");
    assert_eq!(used, bytes.len());
    assert_eq!(decoded, msg);
    assert_eq!(bgp::net("10.0.0.0/8").len(), 8);
}

#[test]
fn concolic_reexport_solves_a_constraint() {
    let mut arena = concolic::ExprArena::new();
    let x = arena.input(0);
    let k = arena.constant(8, 0x42);
    let eq = arena.cmp(concolic::CmpOp::Eq, x, k);
    let mut solver = concolic::Solver::new();
    match solver.solve(&arena, &[(eq, true)], &|_| 0) {
        concolic::SolveResult::Sat(model) => assert_eq!(model.get(&0), Some(&0x42)),
        other => panic!("single-byte equality must be SAT, got {other:?}"),
    }
}

#[test]
fn dice_reexport_exposes_attestations_and_grammar() {
    let mut reg = dice::AttestationRegistry::with_seed(7);
    reg.attest(&bgp::net("10.0.0.0/16"), bgp::Asn(65001));
    assert!(reg.is_attested(&bgp::net("10.0.0.0/16"), bgp::Asn(65001)));

    let mut g = dice::UpdateGrammar::new(dice::GrammarConfig::for_peer(bgp::Asn(65002)), 3);
    let bytes = g.generate();
    assert!(bgp::decode(&bytes).is_ok(), "grammar output is wire-valid");
    let mask = dice::mark_update(&bytes);
    assert_eq!(mask.len(), bytes.len());
}
