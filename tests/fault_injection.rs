//! Fault-injection integration tests: the full BGP system under link
//! failures, session resets, and node crash/restart — the disturbance
//! vocabulary the paper's motivation cites ("reliability problems due to
//! emergent behavior resulting from a local session reset").

use dice_system::bgp::BgpRouter;
use dice_system::dice::scenarios::{self, prefix_of};
use dice_system::netsim::{FaultAction, FaultPlan, NodeId, QuietOutcome, SimDuration, SimTime};

fn router(sim: &dice_system::netsim::Simulator, i: u32) -> &BgpRouter {
    sim.node(NodeId(i))
        .as_any()
        .downcast_ref::<BgpRouter>()
        .unwrap()
}

#[test]
fn link_failure_reroutes_around_ring() {
    // demo27 is multihomed: stubs with two providers survive losing one.
    let mut sim = scenarios::demo27_system(9001);
    sim.run_until_quiet(
        SimDuration::from_secs(5),
        SimTime::from_nanos(300_000_000_000),
    );
    // Node 11 (stub, k=0) has providers 3 and 7 (k % 3 == 0 gives a second).
    assert!(router(&sim, 11).loc_rib().best(&prefix_of(0)).is_some());
    sim.inject_link_down(NodeId(3), NodeId(11));
    sim.run_until_quiet(
        SimDuration::from_secs(5),
        SimTime::from_nanos(500_000_000_000),
    );
    let best = router(&sim, 11)
        .loc_rib()
        .best(&prefix_of(0))
        .expect("multihomed stub must reroute via its second provider");
    // The new path goes via AS65007 (node 7).
    assert_eq!(
        best.route.attrs.as_path.first_asn(),
        Some(scenarios::asn_of(7)),
        "expected reroute via the surviving provider"
    );
}

#[test]
fn session_reset_storm_recovers() {
    let mut sim = scenarios::healthy_line(6, 9002);
    sim.run_until(SimTime::from_nanos(30_000_000_000));
    // Reset every session nearly simultaneously (the paper's "local session
    // reset" motif, en masse).
    let mut plan = FaultPlan::new();
    for i in 0..5u32 {
        plan = plan.at(
            SimTime::from_nanos(31_000_000_000 + i as u64 * 1_000_000),
            FaultAction::SessionReset(NodeId(i), NodeId(i + 1)),
        );
    }
    plan.run_with_faults(&mut sim, SimTime::from_nanos(32_000_000_000));
    // Learned routes are flushed while sessions are down.
    assert!(router(&sim, 5).loc_rib().best(&prefix_of(0)).is_none());
    // Auto-reconnect + re-advertisement restores full reachability.
    let out = sim.run_until_quiet(
        SimDuration::from_secs(5),
        SimTime::from_nanos(120_000_000_000),
    );
    assert_eq!(out, QuietOutcome::Quiescent);
    for i in 0..6u32 {
        for j in 0..6u32 {
            assert!(
                router(&sim, i).loc_rib().best(&prefix_of(j)).is_some(),
                "node {i} lost prefix of {j} after reset storm"
            );
        }
    }
}

#[test]
fn crash_withdraws_prefix_network_wide_and_restart_restores() {
    let mut sim = scenarios::healthy_line(5, 9003);
    sim.run_until(SimTime::from_nanos(30_000_000_000));
    assert!(router(&sim, 4).loc_rib().best(&prefix_of(0)).is_some());

    sim.inject_node_crash(NodeId(0));
    sim.run_until_quiet(
        SimDuration::from_secs(5),
        SimTime::from_nanos(90_000_000_000),
    );
    assert!(
        router(&sim, 4).loc_rib().best(&prefix_of(0)).is_none(),
        "crashed origin's prefix must be withdrawn end to end"
    );
    // Other prefixes unaffected.
    assert!(router(&sim, 4).loc_rib().best(&prefix_of(2)).is_some());

    sim.inject_node_restart(NodeId(0));
    sim.run_until_quiet(
        SimDuration::from_secs(5),
        SimTime::from_nanos(200_000_000_000),
    );
    assert!(
        router(&sim, 4).loc_rib().best(&prefix_of(0)).is_some(),
        "restarted origin must re-announce"
    );
}

#[test]
fn dice_round_succeeds_under_background_churn() {
    use dice_system::dice::{DiceConfig, DiceRunner};
    // A system where a distant link flaps while DiCE snapshots elsewhere:
    // the snapshot must either complete (flap outside the marker window) or
    // fail gracefully — never wedge or corrupt the live system.
    let mut sim = scenarios::healthy_line(6, 9004);
    sim.run_until(SimTime::from_nanos(30_000_000_000));
    let mut cfg = DiceConfig::new(NodeId(1), NodeId(0));
    cfg.concolic_executions = 32;
    cfg.validate_top = 4;
    let mut dice = DiceRunner::from_sim(cfg, &sim);

    // Flap the far link right before the round.
    sim.inject_session_reset(NodeId(4), NodeId(5));
    match dice.run_round(&mut sim) {
        Ok(report) => {
            // Snapshot raced the flap and won; the round is clean except
            // possibly convergence noise. No crashes, no hijacks.
            assert!(!report
                .classes()
                .contains(&dice_system::dice::FaultClass::ProgrammingError));
            assert!(!report
                .classes()
                .contains(&dice_system::dice::FaultClass::OperatorMistake));
        }
        Err(e) => {
            assert!(
                e.contains("snapshot") || e.contains("reset") || e.contains("channel"),
                "unexpected failure mode: {e}"
            );
        }
    }
    // The live system recovers regardless.
    sim.run_until_quiet(
        SimDuration::from_secs(5),
        SimTime::from_nanos(200_000_000_000),
    );
    assert!(sim.session_up(NodeId(4), NodeId(5)));
}

#[test]
fn partition_and_heal() {
    // Cut a line in half; each side keeps only its own prefixes; healing
    // restores the full table.
    let mut sim = scenarios::healthy_line(6, 9005);
    sim.run_until(SimTime::from_nanos(30_000_000_000));
    sim.inject_link_down(NodeId(2), NodeId(3));
    sim.run_until_quiet(
        SimDuration::from_secs(5),
        SimTime::from_nanos(120_000_000_000),
    );
    assert!(router(&sim, 0).loc_rib().best(&prefix_of(5)).is_none());
    assert!(router(&sim, 5).loc_rib().best(&prefix_of(0)).is_none());
    assert!(router(&sim, 0).loc_rib().best(&prefix_of(2)).is_some());
    assert!(router(&sim, 5).loc_rib().best(&prefix_of(3)).is_some());

    sim.inject_link_up(NodeId(2), NodeId(3));
    sim.run_until_quiet(
        SimDuration::from_secs(5),
        SimTime::from_nanos(300_000_000_000),
    );
    for i in 0..6u32 {
        for j in 0..6u32 {
            assert!(
                router(&sim, i).loc_rib().best(&prefix_of(j)).is_some(),
                "node {i} missing prefix of {j} after heal"
            );
        }
    }
}
