//! Property-based tests of the channel-fidelity layer: drop probability
//! extremes are exact, reordering lag is bounded by the window (the
//! no-starvation contract), and duplication produces byte-identical
//! copies — end to end through the pooled payload path.

use dice_system::netsim::{
    LinkFaultState, LinkFaults, LinkParams, Node, NodeApi, NodeId, SessionEvent, SimDuration,
    SimRng, SimTime, Simulator, Topology,
};
use proptest::prelude::*;

fn arb_window() -> impl Strategy<Value = SimDuration> {
    (0u64..10).prop_map(SimDuration::from_millis)
}

/// A probability in `[0, 1]` (the vendored proptest has no f64 ranges).
fn arb_prob() -> impl Strategy<Value = f64> {
    (0u32..=1000).prop_map(|p| p as f64 / 1000.0)
}

proptest! {
    /// `drop: 0.0` never drops and `drop: 1.0` always drops, for any
    /// combination of the other knobs and any RNG stream. The extremes
    /// are exact, not merely probable: `SimRng::chance` consumes nothing
    /// and returns a constant at 0 and 1.
    #[test]
    fn drop_probability_extremes_are_exact(
        duplicate in arb_prob(),
        reorder in arb_prob(),
        window in arb_window(),
        seed in any::<u64>(),
    ) {
        let never = LinkFaults {
            drop: 0.0,
            duplicate,
            reorder,
            reorder_window: window,
            burst: None,
        };
        let always = LinkFaults { drop: 1.0, ..never };
        let mut st = LinkFaultState::default();
        let mut rng = SimRng::seed_from_u64(seed);
        for _ in 0..64 {
            prop_assert!(!never.sample(&mut st, &mut rng).dropped);
            prop_assert!(always.sample(&mut st, &mut rng).dropped);
        }
    }

    /// No verdict ever lags a frame beyond `reorder_window`, and an empty
    /// window degenerates to zero lag — the sampling-level half of the
    /// no-starvation bound.
    #[test]
    fn sampled_lags_never_exceed_the_window(
        drop in (0u32..500).prop_map(|p| p as f64 / 1000.0),
        duplicate in arb_prob(),
        reorder in arb_prob(),
        window in arb_window(),
        seed in any::<u64>(),
    ) {
        let faults = LinkFaults {
            drop,
            duplicate,
            reorder,
            reorder_window: window,
            burst: None,
        };
        let mut st = LinkFaultState::default();
        let mut rng = SimRng::seed_from_u64(seed);
        for _ in 0..256 {
            let v = faults.sample(&mut st, &mut rng);
            prop_assert!(v.dup_lag <= window);
            prop_assert!(v.extra_delay.unwrap_or(SimDuration::ZERO) <= window);
            if window == SimDuration::ZERO {
                prop_assert_eq!(v.dup_lag, SimDuration::ZERO);
                prop_assert_eq!(v.extra_delay.unwrap_or(SimDuration::ZERO), SimDuration::ZERO);
            }
        }
    }
}

/// Sends one tagged payload per timer tick once the session is up,
/// recording the send time of each. Payloads go through the pooled
/// buffer path (`NodeApi::buf`) exactly like the protocol codecs'
/// `encode_into`.
#[derive(Clone)]
struct Blaster {
    peer: NodeId,
    payloads: Vec<Vec<u8>>,
    period: SimDuration,
    sent_at: Vec<SimTime>,
}

impl Node for Blaster {
    fn on_message(&mut self, _from: NodeId, _data: &[u8], _api: &mut NodeApi<'_>) {}
    fn on_session(&mut self, peer: NodeId, ev: SessionEvent, api: &mut NodeApi<'_>) {
        if peer == self.peer && matches!(ev, SessionEvent::Up) && self.sent_at.is_empty() {
            api.set_timer(self.period, 1);
        }
    }
    fn on_timer(&mut self, _token: u64, api: &mut NodeApi<'_>) {
        if self.sent_at.len() < self.payloads.len() {
            let mut buf = api.buf();
            buf.as_mut_vec()
                .extend_from_slice(&self.payloads[self.sent_at.len()]);
            api.send(self.peer, buf);
            self.sent_at.push(api.now());
            api.set_timer(self.period, 1);
        }
    }
    fn clone_node(&self) -> Box<dyn Node> {
        Box::new(self.clone())
    }
    fn state_size(&self) -> usize {
        self.payloads.iter().map(Vec::len).sum()
    }
    fn as_any(&self) -> &dyn core::any::Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn core::any::Any {
        self
    }
}

/// Records every delivered payload with its arrival time.
#[derive(Clone, Default)]
struct Recorder {
    got: Vec<(SimTime, Vec<u8>)>,
}

impl Node for Recorder {
    fn on_message(&mut self, _from: NodeId, data: &[u8], api: &mut NodeApi<'_>) {
        self.got.push((api.now(), data.to_vec()));
    }
    fn clone_node(&self) -> Box<dyn Node> {
        Box::new(self.clone())
    }
    fn state_size(&self) -> usize {
        self.got.iter().map(|(_, v)| v.len() + 8).sum()
    }
    fn as_any(&self) -> &dyn core::any::Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn core::any::Any {
        self
    }
}

const LINK_DELAY: SimDuration = SimDuration::from_millis(5);

/// Run a 0 → 1 blaster/recorder pair under `faults`, returning the send
/// times and the recorder's arrivals.
fn blast(
    payloads: Vec<Vec<u8>>,
    faults: LinkFaults,
    seed: u64,
) -> (Vec<SimTime>, Vec<(SimTime, Vec<u8>)>) {
    let topo = Topology::line(2, LinkParams::fixed(LINK_DELAY));
    let mut sim = Simulator::new(topo, seed);
    sim.set_link_faults(faults);
    sim.set_unreliable_links(true);
    let n = payloads.len() as u64;
    sim.set_node(
        NodeId(0),
        Box::new(Blaster {
            peer: NodeId(1),
            payloads,
            period: SimDuration::from_millis(2),
            sent_at: Vec::new(),
        }),
    );
    sim.set_node(NodeId(1), Box::<Recorder>::default());
    sim.start();
    // Generous horizon: session setup plus every send plus the window.
    sim.run_until(SimTime::ZERO + SimDuration::from_secs(2) + LINK_DELAY * (n + 4));
    let sent_at = sim
        .node(NodeId(0))
        .as_any()
        .downcast_ref::<Blaster>()
        .unwrap()
        .sent_at
        .clone();
    let got = sim
        .node(NodeId(1))
        .as_any()
        .downcast_ref::<Recorder>()
        .unwrap()
        .got
        .clone();
    (sent_at, got)
}

/// Tag each payload with its index so arrivals are attributable even when
/// frames overtake each other.
fn tagged(bodies: Vec<Vec<u8>>) -> Vec<Vec<u8>> {
    bodies
        .into_iter()
        .enumerate()
        .map(|(i, mut b)| {
            b.insert(0, i as u8);
            b
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// End-to-end no-starvation: with reordering at full blast and no
    /// loss, every frame still arrives, exactly once, no later than its
    /// send time plus the link delay plus the reorder window.
    #[test]
    fn reordering_never_starves_a_frame(
        bodies in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..16), 1..12),
        window in arb_window(),
        seed in any::<u64>(),
    ) {
        let payloads = tagged(bodies);
        let faults = LinkFaults {
            drop: 0.0,
            duplicate: 0.0,
            reorder: 1.0,
            reorder_window: window,
            burst: None,
        };
        let (sent_at, got) = blast(payloads.clone(), faults, seed);
        prop_assert_eq!(sent_at.len(), payloads.len(), "all frames sent");
        prop_assert_eq!(got.len(), payloads.len(), "no frame lost or duplicated");
        for (i, payload) in payloads.iter().enumerate() {
            let (at, _) = got
                .iter()
                .find(|(_, bytes)| bytes == payload)
                .expect("every frame arrives");
            let deadline = sent_at[i] + LINK_DELAY + window;
            prop_assert!(
                *at <= deadline,
                "frame {i} arrived at {at:?}, past its no-starvation bound {deadline:?}"
            );
        }
    }

    /// Duplication is a pure copy: with duplication at full blast every
    /// payload arrives exactly twice and both copies are byte-identical
    /// to what the sender encoded into the pooled buffer.
    #[test]
    fn duplication_never_corrupts_payload_bytes(
        bodies in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..16), 1..12),
        window in arb_window(),
        seed in any::<u64>(),
    ) {
        let payloads = tagged(bodies);
        let faults = LinkFaults {
            drop: 0.0,
            duplicate: 1.0,
            reorder: 0.0,
            reorder_window: window,
            burst: None,
        };
        let (sent_at, got) = blast(payloads.clone(), faults, seed);
        prop_assert_eq!(sent_at.len(), payloads.len(), "all frames sent");
        let mut received: Vec<Vec<u8>> = got.into_iter().map(|(_, bytes)| bytes).collect();
        received.sort();
        let mut expected: Vec<Vec<u8>> = payloads.iter().chain(payloads.iter()).cloned().collect();
        expected.sort();
        prop_assert_eq!(received, expected, "original + copy, bytes intact");
    }
}
