//! Differential property test: the instrumented UPDATE-handler twin must
//! agree with the concrete pipeline (wire decode → loop/first-AS checks →
//! import policy) on arbitrary grammar-generated and mutated messages —
//! the fidelity contract from DESIGN.md §2.

use dice_system::bgp::{decode, Asn, Message, Policy, RouterConfig, RouterId};
use dice_system::concolic::{ConcolicCtx, ConcolicProgram, RunStatus, SymInput};
use dice_system::dice::{GrammarConfig, SymbolicUpdateHandler, UpdateGrammar};
use dice_system::netsim::NodeId;
use proptest::prelude::*;

const OWN: Asn = Asn(65001);
const PEER: Asn = Asn(65002);

fn test_config(policy_variant: u8) -> RouterConfig {
    use dice_system::bgp::{Match, PrefixFilter, Rule, Verdict};
    let policy = match policy_variant % 3 {
        0 => Policy::accept_all("imp"),
        1 => Policy {
            name: "imp".into(),
            rules: vec![Rule::reject(vec![Match::PrefixIn(vec![
                PrefixFilter::or_longer(dice_system::bgp::net("10.0.0.0/8")),
            ])])],
            default: Verdict::Accept,
        },
        _ => Policy {
            name: "imp".into(),
            rules: vec![
                Rule {
                    matches: vec![Match::AsPathLenAtMost(2)],
                    actions: vec![dice_system::bgp::Action::SetLocalPref(200)],
                    verdict: Some(Verdict::Accept),
                },
                Rule::reject(vec![Match::OriginIs(dice_system::bgp::Origin::Incomplete)]),
            ],
            default: Verdict::Accept,
        },
    };
    RouterConfig::minimal(OWN, RouterId(1))
        .with_neighbor(NodeId(2), PEER, "imp", "all")
        .with_policy(policy)
}

/// The concrete reference pipeline, mirroring BgpRouter::handle_update's
/// accept/reject decision for announcements.
fn reference_verdict(cfg: &RouterConfig, bytes: &[u8]) -> Result<bool, String> {
    match decode(bytes) {
        Ok((Message::Update(u), _)) => {
            if u.nlri.is_empty() {
                return Ok(true); // withdraw-only accepted
            }
            let attrs = u.attrs.as_ref().expect("decoder enforces attrs with NLRI");
            if attrs.as_path.contains(OWN) {
                return Err("as-loop".into());
            }
            if attrs.as_path.first_asn() != Some(PEER) {
                return Err("first-as".into());
            }
            let policy = &cfg.policies["imp"];
            Ok(u.nlri.iter().all(|p| policy.apply(p, attrs, OWN).is_some()))
        }
        Ok(_) => Err("not-update".into()),
        Err(e) => Err(format!("decode:{e}")),
    }
}

fn twin_verdict(cfg: &RouterConfig, bytes: &[u8]) -> Result<bool, String> {
    let mut handler = SymbolicUpdateHandler::new(cfg.clone(), NodeId(2));
    let mut ctx = ConcolicCtx::new(SymInput::all_concrete(bytes.to_vec()));
    match handler.run(&mut ctx) {
        RunStatus::Ok => Ok(true),
        RunStatus::Rejected(stage) if stage == "import-policy" => Ok(false),
        RunStatus::Rejected(stage) => Err(stage),
        RunStatus::Crash(c) => Err(format!("crash:{c}")),
    }
}

proptest! {
    /// On valid grammar messages the twin and the reference agree exactly
    /// (accept vs policy-reject vs structural rejection).
    #[test]
    fn agrees_on_valid_messages(seed in any::<u64>(), variant in any::<u8>()) {
        let cfg = test_config(variant);
        let mut g = UpdateGrammar::new(GrammarConfig::for_peer(PEER), seed);
        for bytes in g.batch(10) {
            let reference = reference_verdict(&cfg, &bytes);
            let twin = twin_verdict(&cfg, &bytes);
            match (&reference, &twin) {
                (Ok(a), Ok(b)) => prop_assert_eq!(a, b, "verdict mismatch"),
                (Err(_), Err(_)) => {} // both reject structurally
                other => prop_assert!(false, "divergence: {:?}", other),
            }
        }
    }

    /// On byte-mutated messages, accept/reject *classification* agrees:
    /// the twin accepts iff the reference accepts. (Error taxonomies may
    /// differ in wording, never in direction.)
    #[test]
    fn agrees_on_mutated_messages(
        seed in any::<u64>(),
        variant in any::<u8>(),
        mutations in prop::collection::vec((any::<usize>(), any::<u8>()), 1..6),
    ) {
        let cfg = test_config(variant);
        let mut g = UpdateGrammar::new(GrammarConfig::for_peer(PEER), seed);
        let mut bytes = g.generate();
        for (pos, val) in mutations {
            // Never corrupt the 19-byte header: the twin treats framing as
            // concrete (the marking policy keeps it fixed).
            let body = bytes.len() - 19;
            let i = 19 + (pos % body);
            bytes[i] = val;
        }
        let reference_ok = matches!(reference_verdict(&cfg, &bytes), Ok(true));
        let twin_ok = matches!(twin_verdict(&cfg, &bytes), Ok(true));
        prop_assert_eq!(reference_ok, twin_ok, "acceptance divergence on mutated input");
    }

    /// The twin is total: arbitrary bodies never panic it.
    #[test]
    fn twin_never_panics(body in prop::collection::vec(any::<u8>(), 4..256)) {
        let cfg = test_config(0);
        let mut bytes = vec![0xFF; 16];
        bytes.extend_from_slice(&((19 + body.len()) as u16).to_be_bytes());
        bytes.push(2); // UPDATE
        bytes.extend_from_slice(&body);
        let mut handler = SymbolicUpdateHandler::new(cfg, NodeId(2));
        let mask = dice_system::dice::mark_update(&bytes);
        let mut ctx = ConcolicCtx::new(SymInput::with_mask(bytes, mask));
        let _ = handler.run(&mut ctx);
    }
}
