//! Heterogeneity round-trip: the DiCE runtime must explore federations
//! that mix BGP routers with arbitrary other `ExplorableNode`
//! implementors, and a campaign must sweep multiple explorers and report
//! per-explorer coverage.

use dice_system::bgp::{net, Asn, BgpRouter, Ipv4Net, RouterConfig, RouterId};
use dice_system::concolic::{ConcolicCtx, RunStatus, SiteId};
use dice_system::dice::sut::{
    CheckView, ExplorableNode, ExplorationPlan, SessionHealth, SutCatalog,
};
use dice_system::dice::{
    scenarios, AttestationRegistry, Campaign, DiceConfig, DiceRunner, FaultClass,
};
use dice_system::gossip::{GossipConfig, GossipNode};
use dice_system::netsim::{
    LinkParams, Node, NodeApi, NodeId, SimDuration, SimTime, Simulator, Topology,
};

/// A trivial non-BGP protocol node: counts the bytes it receives and
/// "crashes" on a magic opcode — enough surface for DiCE to snapshot,
/// explore, validate and check it.
#[derive(Clone, Default)]
struct MonitorNode {
    peers: Vec<NodeId>,
    bytes_seen: u64,
}

const MAGIC_CRASH_OPCODE: u8 = 0x99;

impl Node for MonitorNode {
    fn on_message(&mut self, _from: NodeId, data: &[u8], api: &mut NodeApi<'_>) {
        self.bytes_seen += data.len() as u64;
        if data.first() == Some(&MAGIC_CRASH_OPCODE) {
            api.crash("monitor: magic opcode");
        }
    }
    fn clone_node(&self) -> Box<dyn Node> {
        Box::new(self.clone())
    }
    fn state_size(&self) -> usize {
        8 + self.peers.len() * 4
    }
    fn as_any(&self) -> &dyn core::any::Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn core::any::Any {
        self
    }
}

impl CheckView for MonitorNode {
    fn for_each_route_flip(&self, _visit: &mut dyn FnMut(Ipv4Net, u64)) {}
    fn for_each_best_route(&self, _visit: &mut dyn FnMut(Ipv4Net, Asn)) {}
    fn session_health(&self) -> SessionHealth {
        SessionHealth {
            configured: self.peers.len(),
            established: 0,
        }
    }
}

impl ExplorableNode for MonitorNode {
    fn kind(&self) -> &'static str {
        "monitor"
    }
    fn injection_peers(&self) -> Vec<NodeId> {
        self.peers.clone()
    }
    fn exploration_plan(
        &self,
        peer: NodeId,
        _grammar_seeds: usize,
        _seed: u64,
    ) -> Result<ExplorationPlan, String> {
        if !self.peers.contains(&peer) {
            return Err("peer not monitored".into());
        }
        // Twin of on_message: branch on the magic opcode.
        let program = |ctx: &mut ConcolicCtx| -> RunStatus {
            if !ctx.in_bounds(0) {
                return RunStatus::Rejected("empty".into());
            }
            let op = ctx.read_u8(0);
            let magic = ctx.eq_const(op, MAGIC_CRASH_OPCODE as u64);
            if ctx.branch(SiteId(1), magic) {
                return RunStatus::Crash("monitor: magic opcode".into());
            }
            RunStatus::Ok
        };
        fn all_symbolic(bytes: &[u8]) -> Vec<bool> {
            vec![true; bytes.len()]
        }
        Ok(ExplorationPlan {
            program: Box::new(program),
            marker: all_symbolic,
            seeds: vec![vec![0u8; 4]],
        })
    }
    fn attest(&self, _registry: &mut AttestationRegistry) {}
    fn check_view(&self) -> &dyn CheckView {
        self
    }
}

fn monitor_probe(node: &dyn Node) -> Option<&dyn ExplorableNode> {
    node.as_any()
        .downcast_ref::<MonitorNode>()
        .map(|m| m as &dyn ExplorableNode)
}

/// 0 (BGP) — 1 (BGP) — 2 (monitor): BGP routers peer with each other;
/// the monitor observes node 1's traffic without speaking BGP.
fn mixed_system(seed: u64) -> Simulator {
    let topo = Topology::line(3, LinkParams::fixed(SimDuration::from_millis(5)));
    let mut sim = Simulator::new(topo, seed);
    for i in 0..2u32 {
        let mut cfg = RouterConfig::minimal(Asn(65000 + i as u16), RouterId(i + 1))
            .with_network(net(&format!("10.{i}.0.0/16")));
        let peer = if i == 0 { 1 } else { 0 };
        cfg = cfg.with_neighbor(NodeId(peer), Asn(65000 + peer as u16), "all", "all");
        sim.set_node(NodeId(i), Box::new(BgpRouter::new(cfg)));
    }
    sim.set_node(
        NodeId(2),
        Box::new(MonitorNode {
            peers: vec![NodeId(1)],
            bytes_seen: 0,
        }),
    );
    sim.start();
    sim
}

fn mixed_catalog() -> SutCatalog {
    SutCatalog::default().with_probe(monitor_probe)
}

#[test]
fn mixed_topology_round_trips_through_all_phases() {
    let mut sim = mixed_system(21);
    sim.run_until(SimTime::from_nanos(10_000_000_000));

    // A full DiCE round with the *monitor* as explorer: snapshot,
    // explore, validate, check — no panics, and the twin's crash branch
    // is reachable.
    let mut cfg = DiceConfig::new(NodeId(2), NodeId(1));
    cfg.concolic_executions = 16;
    cfg.validate_top = 4;
    cfg.horizon = SimDuration::from_secs(30);
    let mut runner = DiceRunner::with_catalog(cfg, &sim, mixed_catalog());
    let report = runner.run_round(&mut sim).expect("monitor round runs");
    assert_eq!(report.explorer_kind, "monitor");
    assert_eq!(report.explorer_sessions.configured, 1);
    assert!(report.executions > 0);
    assert!(report.validated > 0);
    assert!(
        report.verdicts_total > 0,
        "checkers ran over the mixed clone"
    );
    // The concolic layer flips the magic-opcode branch, the validation
    // layer replays it on a clone, and the crash checker classifies it.
    assert!(
        report.classes().contains(&FaultClass::ProgrammingError),
        "magic-opcode crash must be surfaced: {:?}",
        report.faults
    );

    // A BGP round over the same mixed system also passes through cleanly.
    let mut cfg = DiceConfig::new(NodeId(1), NodeId(0));
    cfg.concolic_executions = 24;
    cfg.validate_top = 4;
    cfg.horizon = SimDuration::from_secs(30);
    let mut runner = DiceRunner::with_catalog(cfg, &sim, mixed_catalog());
    let report = runner.run_round(&mut sim).expect("bgp round runs");
    assert_eq!(report.explorer_kind, "bgp");
    assert!(report.verdicts_total > 0);
    assert_eq!(
        report.explorer_sessions.established, 1,
        "router 1's session to router 0 is up at snapshot time"
    );
}

#[test]
fn campaign_sweeps_mixed_federation() {
    let mut sim = mixed_system(22);
    sim.run_until(SimTime::from_nanos(10_000_000_000));
    let report = Campaign::with_catalog(&sim, mixed_catalog())
        .executions(16)
        .validate_top(3)
        .horizon(SimDuration::from_secs(30))
        .run(&mut sim)
        .expect("mixed campaign runs");
    // Pairs: (0,1), (1,0), (2,1) — both protocols explored.
    assert_eq!(report.rounds.len(), 3);
    let kinds: std::collections::BTreeSet<&str> = report
        .per_explorer
        .iter()
        .map(|e| e.kind.as_str())
        .collect();
    assert!(
        kinds.contains("bgp") && kinds.contains("monitor"),
        "{kinds:?}"
    );
}

#[test]
fn demo27_campaign_visits_multiple_explorers_with_coverage() {
    let mut sim = scenarios::demo27_system(4);
    sim.run_until_quiet(
        SimDuration::from_secs(5),
        SimTime::from_nanos(300_000_000_000),
    );
    let build = |sim: &Simulator, workers: usize| {
        Campaign::new(sim)
            .explorers([NodeId(11), NodeId(12)])
            .executions(16)
            .validate_top(3)
            .horizon(SimDuration::from_secs(30))
            .workers(workers)
    };
    let report = build(&sim, 4).run(&mut sim).expect("campaign runs");
    assert!(
        report.per_explorer.len() > 1,
        "campaign must visit >1 explorer: {:?}",
        report.per_explorer
    );
    for e in &report.per_explorer {
        assert!(e.coverage > 0, "per-explorer coverage reported: {e:?}");
        assert!(e.rounds >= 1);
    }
    assert!(report.coverage_union > 0);

    // Determinism: parallel validation (workers >= 4) detects exactly the
    // fault classes that sequential single-round runs detect.
    let mut sequential_classes = std::collections::BTreeSet::new();
    for (explorer, peers) in build(&sim, 1).sweep_plan() {
        for peer in peers {
            let mut cfg = DiceConfig::new(explorer, peer);
            cfg.concolic_executions = 16;
            cfg.validate_top = 3;
            cfg.horizon = SimDuration::from_secs(30);
            cfg.workers = 1;
            let mut runner = DiceRunner::from_sim(cfg, &sim);
            let r = runner.run_round(&mut sim).expect("single round runs");
            sequential_classes.extend(r.classes());
        }
    }
    assert_eq!(report.classes(), sequential_classes);
}

#[test]
fn scheduler_is_deterministic_across_pair_workers() {
    // The parallel round engine must produce the *same report* — faults,
    // coverage union, detection, per-explorer summaries, round ordering —
    // for any round-level parallelism, on a federation mixing BGP routers
    // with a non-BGP monitor node. Only wall-clock fields may differ;
    // `CampaignReport::normalized` zeroes those, and the serialized JSON
    // must then be byte-identical.
    let run = |pair_workers: usize| {
        let mut sim = mixed_system(33);
        sim.run_until(SimTime::from_nanos(10_000_000_000));
        let report = Campaign::with_catalog(&sim, mixed_catalog())
            .executions(32)
            .validate_top(5)
            .horizon(SimDuration::from_secs(30))
            .workers(2)
            .pair_workers(pair_workers)
            .run(&mut sim)
            .expect("mixed campaign runs");
        (
            report.classes(),
            serde_json::to_string(&report.normalized()).unwrap(),
        )
    };
    let (classes_1, json_1) = run(1);
    let (classes_2, json_2) = run(2);
    let (classes_4, json_4) = run(4);
    // The monitor node's magic-opcode crash is found regardless of
    // parallelism.
    assert!(classes_1.contains(&FaultClass::ProgrammingError));
    assert_eq!(classes_1, classes_2);
    assert_eq!(classes_1, classes_4);
    assert_eq!(json_1, json_2, "pair_workers=2 must match sequential");
    assert_eq!(json_1, json_4, "pair_workers=4 must match sequential");
}

/// Three *kinds* of node under one campaign:
///
/// ```text
/// 0 (bgp) — 1 (bgp) — 2 (gossip, seeded bug) — 3 (gossip) — 5 (monitor)
///                          \________ 4 (gossip) ________/
/// ```
///
/// BGP routers 0-1 peer over a line; gossip nodes 2-3-4 form a triangle
/// (node 2 carries the seeded digest-count defect); the monitor stub
/// watches gossip node 3. One link 1-2 bridges the domains so a single
/// Chandy–Lamport snapshot spans all three protocols.
fn three_kind_system(seed: u64) -> Simulator {
    let mut topo = Topology::with_nodes(6);
    let lp = || LinkParams::fixed(SimDuration::from_millis(5));
    let rel = dice_system::netsim::Relationship::Unlabeled;
    topo.add_edge(NodeId(0), NodeId(1), lp(), rel);
    topo.add_edge(NodeId(1), NodeId(2), lp(), rel);
    topo.add_edge(NodeId(2), NodeId(3), lp(), rel);
    topo.add_edge(NodeId(3), NodeId(4), lp(), rel);
    topo.add_edge(NodeId(4), NodeId(2), lp(), rel);
    topo.add_edge(NodeId(3), NodeId(5), lp(), rel);
    let mut sim = Simulator::new(topo, seed);
    for i in 0..2u32 {
        let peer = 1 - i;
        let cfg = RouterConfig::minimal(Asn(65000 + i as u16), RouterId(i + 1))
            .with_network(net(&format!("10.{i}.0.0/16")))
            .with_neighbor(NodeId(peer), Asn(65000 + peer as u16), "all", "all");
        sim.set_node(NodeId(i), Box::new(BgpRouter::new(cfg)));
    }
    for i in 2..5u32 {
        let mut cfg = GossipConfig::new(61000 + i as u16).publish(i as u16);
        for j in 2..5u32 {
            if j != i {
                cfg = cfg.with_peer(NodeId(j));
            }
        }
        for t in 2..5u16 {
            cfg = cfg.subscribe(t);
        }
        if i == 2 {
            cfg.bugs.digest_count_overflow = true;
        }
        sim.set_node(NodeId(i), Box::new(GossipNode::new(cfg)));
    }
    sim.set_node(
        NodeId(5),
        Box::new(MonitorNode {
            peers: vec![NodeId(3)],
            bytes_seen: 0,
        }),
    );
    sim.start();
    sim
}

fn three_kind_campaign(seed: u64, pair_workers: usize) -> dice_system::dice::CampaignReport {
    let mut sim = three_kind_system(seed);
    sim.run_until(SimTime::from_nanos(12_000_000_000));
    Campaign::with_catalog(&sim, mixed_catalog())
        .validate_top(5)
        .horizon(SimDuration::from_secs(30))
        .workers(2)
        .pair_workers(pair_workers)
        .run(&mut sim)
        .expect("three-kind campaign runs")
}

#[test]
fn three_kind_campaign_visits_every_explorer_kind() {
    let report = three_kind_campaign(41, 2);
    // 2 BGP pairs + 6 gossip pairs + 1 monitor pair.
    assert_eq!(report.rounds.len(), 9);
    let kinds: std::collections::BTreeSet<&str> = report
        .per_explorer
        .iter()
        .map(|e| e.kind.as_str())
        .collect();
    assert_eq!(
        kinds,
        ["bgp", "gossip", "monitor"].into_iter().collect(),
        "campaign must explore all three protocol kinds"
    );
    // The per-kind workload rows partition the sweep.
    let by_kind: std::collections::BTreeMap<&str, usize> = report
        .per_kind
        .iter()
        .map(|k| (k.kind.as_str(), k.rounds))
        .collect();
    assert_eq!(by_kind["bgp"], 2);
    assert_eq!(by_kind["gossip"], 6);
    assert_eq!(by_kind["monitor"], 1);
    for k in &report.per_kind {
        assert!(k.coverage > 0, "per-kind coverage reported: {k:?}");
    }
}

#[test]
fn three_kind_campaign_detects_seeded_gossip_bug_via_gossip_explorer() {
    let report = three_kind_campaign(42, 2);
    // The seeded gossip defect is found, attributed to the buggy node.
    let gossip_fault = report
        .faults
        .iter()
        .find(|f| f.detail.contains("digest count overflow"))
        .expect("seeded gossip bug must be detected");
    assert_eq!(gossip_fault.class, FaultClass::ProgrammingError);
    assert_eq!(gossip_fault.node, NodeId(2));
    // ... by a round whose explorer speaks gossip, not BGP.
    let detecting_round = report
        .rounds
        .iter()
        .find(|r| {
            r.faults
                .iter()
                .any(|f| f.detail.contains("digest count overflow"))
        })
        .expect("a round carries the gossip fault");
    assert_eq!(detecting_round.explorer_kind, "gossip");
    assert_eq!(detecting_round.explorer, NodeId(2));
    // The per-kind row credits the gossip workload with the find.
    let gossip_kind = report.per_kind.iter().find(|k| k.kind == "gossip").unwrap();
    assert!(gossip_kind.faults > 0);
}

#[test]
fn three_kind_reports_are_byte_identical_across_pair_workers() {
    let runs: Vec<String> = [1usize, 4]
        .iter()
        .map(|&k| {
            let report = three_kind_campaign(43, k);
            assert!(
                report
                    .faults
                    .iter()
                    .any(|f| f.detail.contains("digest count overflow")),
                "gossip bug found at pair_workers={k}"
            );
            serde_json::to_string(&report.normalized()).unwrap()
        })
        .collect();
    assert_eq!(
        runs[0], runs[1],
        "normalized three-kind reports must match at pair_workers 1 and 4"
    );
}

#[test]
fn campaign_survives_a_poisoned_executor_lock_byte_identically() {
    // End-to-end poison recovery: arm the executor's test-only fault so
    // the open-batches mutex is poisoned before any worker starts, then
    // run the full three-kind federation campaign. Every lock access goes
    // through lock_unpoisoned, so the campaign must neither panic nor
    // drift — the normalized report is byte-identical to a pristine run.
    let pristine = three_kind_campaign(43, 2);
    dice_system::dice::executor_test_support::poison_next_run();
    let poisoned = three_kind_campaign(43, 2);
    assert!(
        poisoned
            .faults
            .iter()
            .any(|f| f.detail.contains("digest count overflow")),
        "gossip bug still found under a poisoned lock"
    );
    assert_eq!(
        serde_json::to_string(&pristine.normalized()).unwrap(),
        serde_json::to_string(&poisoned.normalized()).unwrap(),
        "poison recovery must not perturb the normalized report"
    );
}

#[test]
fn clone_pooling_is_byte_identical_to_fresh_clones() {
    // The clone pool must be a pure allocation optimization: a mixed
    // BGP+gossip(+monitor) federation swept with pooled validation
    // simulators (`pool_size` = default) and with pooling disabled
    // (`pool_size = 0`, every input pays a fresh `from_shadow`) must
    // serialize to byte-identical normalized reports, at sequential and
    // parallel round scheduling alike.
    let run = |pool_size: usize, pair_workers: usize| {
        let mut sim = three_kind_system(44);
        sim.run_until(SimTime::from_nanos(12_000_000_000));
        let report = Campaign::with_catalog(&sim, mixed_catalog())
            .executions(96)
            .validate_top(5)
            .horizon(SimDuration::from_secs(30))
            .workers(2)
            .pair_workers(pair_workers)
            .pool_size(pool_size)
            .run(&mut sim)
            .expect("three-kind campaign runs");
        if pool_size > 0 {
            assert!(
                report.perf.pool_hits > 0,
                "pooled run must reuse simulators: {:?}",
                report.perf
            );
        } else {
            assert_eq!(report.perf.pool_hits, 0, "pool_size=0 forces fresh clones");
            assert_eq!(
                report.perf.pool_misses as usize, report.validated_total,
                "every validated input pays a fresh clone when pooling is off"
            );
        }
        serde_json::to_string(&report.normalized()).unwrap()
    };
    let pooled_1 = run(1, 1);
    assert_eq!(run(0, 1), pooled_1, "pool on/off differs at pair_workers=1");
    assert_eq!(run(1, 4), pooled_1, "pooled parallel differs");
    assert_eq!(run(0, 4), pooled_1, "fresh parallel differs");
    assert!(
        pooled_1.contains("\"pool_hits\":0"),
        "normalized() must zero the perf counters"
    );
}

#[test]
fn wire_knobs_are_byte_identical_across_the_whole_matrix() {
    // The zero-copy wire path adds two knobs to validation clones: the
    // payload-buffer pool and batched same-instant delivery. Both are
    // pure allocation/scheduling optimizations — the event schedule and
    // every delivered byte are identical in all four combinations — so a
    // mixed three-kind federation must produce byte-identical normalized
    // reports across the full {wire_pool} x {batch_delivery} x
    // {pair_workers} matrix. Only the (normalized-away) perf counters may
    // observe the difference.
    let run = |wire_pool: bool, batch: bool, pair_workers: usize| {
        let mut sim = three_kind_system(46);
        sim.run_until(SimTime::from_nanos(12_000_000_000));
        let report = Campaign::with_catalog(&sim, mixed_catalog())
            .executions(96)
            .validate_top(5)
            .horizon(SimDuration::from_secs(30))
            .workers(2)
            .pair_workers(pair_workers)
            .wire_pool(wire_pool)
            .batch_delivery(batch)
            .run(&mut sim)
            .expect("three-kind campaign runs");
        assert!(
            report.perf.wire_bytes > 0,
            "validation clones must move wire bytes: {:?}",
            report.perf
        );
        assert!(
            report.perf.delivered_batches > 0,
            "deliveries are counted as batches in both modes: {:?}",
            report.perf
        );
        if wire_pool {
            assert!(
                report.perf.buf_hits > 0,
                "wire pool on must recycle payload buffers: {:?}",
                report.perf
            );
        } else {
            assert_eq!(
                (report.perf.buf_hits, report.perf.buf_misses),
                (0, 0),
                "wire pool off never touches the buffer shelf"
            );
        }
        serde_json::to_string(&report.normalized()).unwrap()
    };
    let base = run(true, true, 1);
    assert_eq!(run(false, true, 1), base, "wire pool off differs");
    assert_eq!(run(true, false, 1), base, "batching off differs");
    assert_eq!(run(false, false, 1), base, "both knobs off differs");
    assert_eq!(run(true, true, 4), base, "default knobs parallel differs");
    assert_eq!(run(false, false, 4), base, "knobs off parallel differs");
    assert!(
        base.contains("\"buf_hits\":0") && base.contains("\"wire_bytes\":0"),
        "normalized() must zero the wire counters"
    );
}

#[test]
fn delta_and_schedule_knobs_are_byte_identical_across_the_whole_matrix() {
    // Delta snapshots serve unmutated node checkpoints from a per-node
    // cache (state-identical to fresh clones), and an *empty* dynamics
    // schedule expands to zero actions — so a mixed three-kind federation
    // must produce byte-identical normalized reports across the full
    // {delta_snapshots} x {schedule off/empty} x {pair_workers} matrix.
    // Only the (normalized-away) perf counters may observe the delta knob.
    use dice_system::netsim::ScheduleSpec;
    let run = |delta: bool, schedule: bool, pair_workers: usize| {
        let mut sim = three_kind_system(47);
        sim.run_until(SimTime::from_nanos(12_000_000_000));
        let mut campaign = Campaign::with_catalog(&sim, mixed_catalog())
            .executions(96)
            .validate_top(5)
            .horizon(SimDuration::from_secs(30))
            .workers(2)
            .pair_workers(pair_workers)
            .delta_snapshots(delta);
        if schedule {
            campaign = campaign.schedule(ScheduleSpec::default());
        }
        let report = campaign.run(&mut sim).expect("three-kind campaign runs");
        assert!(
            report.perf.nodes_recaptured > 0,
            "cuts capture checkpoints in both modes: {:?}",
            report.perf
        );
        assert_eq!(
            report.perf.churn_events, 0,
            "an empty schedule applies no dynamics"
        );
        serde_json::to_string(&report.normalized()).unwrap()
    };
    let base = run(true, false, 1);
    assert_eq!(run(false, false, 1), base, "delta off differs");
    assert_eq!(run(true, true, 1), base, "empty schedule differs");
    assert_eq!(run(false, true, 1), base, "delta off + schedule differs");
    assert_eq!(run(true, false, 4), base, "delta parallel differs");
    assert_eq!(run(false, false, 4), base, "delta off parallel differs");
    assert_eq!(run(true, true, 4), base, "schedule parallel differs");
    assert_eq!(run(false, true, 4), base, "off/on parallel differs");
    assert!(
        base.contains("\"nodes_recaptured\":0") && base.contains("\"churn_events\":0"),
        "normalized() must zero the delta counters"
    );
}

#[test]
fn link_fault_knobs_are_byte_identical_across_pair_workers() {
    // Channel fidelity is sampled from per-link RNG streams split off a
    // salted parent, so a lossy campaign is just as deterministic as a
    // reliable one: for a fixed seed and fault knob, the normalized
    // report must be byte-identical across round-level parallelism. A
    // no-op fault table behind `unreliable_links = true` must be
    // indistinguishable from the knob being off — `is_noop` short-circuits
    // before any stream is consumed.
    use dice_system::netsim::LinkFaults;
    let run = |unreliable: bool, faults: Option<LinkFaults>, pair_workers: usize| {
        let mut sim = three_kind_system(49);
        sim.run_until(SimTime::from_nanos(12_000_000_000));
        let mut campaign = Campaign::with_catalog(&sim, mixed_catalog())
            .executions(96)
            .validate_top(5)
            .horizon(SimDuration::from_secs(30))
            .workers(2)
            .pair_workers(pair_workers)
            .unreliable_links(unreliable);
        if let Some(f) = faults {
            campaign = campaign.link_faults(f);
        }
        let report = campaign.run(&mut sim).expect("three-kind campaign runs");
        if unreliable && faults.is_some_and(|f| !f.is_noop()) {
            assert!(
                report.perf.frames_dropped
                    + report.perf.frames_duplicated
                    + report.perf.frames_reordered
                    > 0,
                "lossy clones must meter channel perturbation: {:?}",
                report.perf
            );
            assert!(
                report
                    .faults
                    .iter()
                    .any(|f| f.detail.contains("digest count overflow")),
                "seeded gossip bug still detected at 5% loss"
            );
        } else {
            assert_eq!(
                report.perf.frames_dropped, 0,
                "reliable clones never drop frames"
            );
        }
        serde_json::to_string(&report.normalized()).unwrap()
    };
    let noop = LinkFaults {
        drop: 0.0,
        duplicate: 0.0,
        reorder: 0.0,
        reorder_window: SimDuration::ZERO,
        burst: None,
    };
    let reliable = run(false, None, 1);
    assert_eq!(run(false, None, 4), reliable, "reliable parallel differs");
    assert_eq!(
        run(true, Some(noop), 1),
        reliable,
        "no-op faults must be indistinguishable from reliable links"
    );
    assert_eq!(
        run(true, Some(noop), 4),
        reliable,
        "no-op faults parallel differs"
    );
    let lossy = run(true, Some(LinkFaults::lossy(0.05)), 1);
    assert_eq!(
        run(true, Some(LinkFaults::lossy(0.05)), 4),
        lossy,
        "lossy campaign must be byte-identical across pair_workers"
    );
    assert!(
        lossy.contains("\"frames_dropped\":0"),
        "normalized() must zero the channel-fidelity counters"
    );
}

#[test]
fn real_dynamics_schedule_replays_deterministically() {
    // A *non-empty* schedule changes what the campaign observes (nodes
    // leave and rejoin between sweeps) — but it must do so
    // deterministically: same seed, same spec, same normalized bytes.
    use dice_system::netsim::ScheduleSpec;
    let run = || {
        let mut sim = three_kind_system(48);
        sim.run_until(SimTime::from_nanos(12_000_000_000));
        let spec = ScheduleSpec {
            partitions: 1,
            partition_len: SimDuration::from_millis(1),
            window: SimDuration::ZERO,
            ..ScheduleSpec::default()
        };
        let report = Campaign::with_catalog(&sim, mixed_catalog())
            .executions(16)
            .validate_top(3)
            .horizon(SimDuration::from_secs(30))
            .rounds(2)
            .schedule(spec)
            .run(&mut sim)
            .expect("campaign survives a partition window");
        (
            report.perf.churn_events,
            serde_json::to_string(&report.normalized()).unwrap(),
        )
    };
    let (events_a, json_a) = run();
    assert!(
        events_a >= 1,
        "the partition leg must fire before the first sweep"
    );
    let (events_b, json_b) = run();
    assert_eq!(events_a, events_b);
    assert_eq!(json_a, json_b, "dynamics must replay from the seed");
}

#[test]
fn buggy_campaign_matches_sequential_detection() {
    // Same determinism property on a system that actually faults.
    let mut sim = scenarios::buggy_parser_scenario(7);
    sim.run_until(SimTime::from_nanos(10_000_000_000));
    let campaign_classes = Campaign::new(&sim)
        .explorers([NodeId(1)])
        .executions(160)
        .validate_top(16)
        .workers(4)
        .run(&mut sim)
        .expect("campaign runs")
        .classes();

    let mut cfg = DiceConfig::new(NodeId(1), NodeId(0));
    cfg.concolic_executions = 160;
    cfg.validate_top = 16;
    let mut runner = DiceRunner::from_sim(cfg, &sim);
    let mut sequential = runner.run_round(&mut sim).expect("round runs").classes();
    let mut cfg2 = DiceConfig::new(NodeId(1), NodeId(2));
    cfg2.concolic_executions = 160;
    cfg2.validate_top = 16;
    let mut runner2 = DiceRunner::from_sim(cfg2, &sim);
    sequential.extend(runner2.run_round(&mut sim).expect("round runs").classes());

    assert!(campaign_classes.contains(&FaultClass::ProgrammingError));
    assert_eq!(campaign_classes, sequential);
}
