//! Reflection-style check of the determinism contract: serialize a real
//! `CampaignReport::normalized()` to JSON, then walk the *value tree* and
//! assert every wall-clock-named field (`wall_*`, `*_us`, `*_ms`,
//! `*_us_cum`, `*_ms_cum`, `*_micros`) and every perf-counter field is
//! zero — whatever struct it lives in, at any nesting depth.
//!
//! This is the dynamic twin of the `wall-clock-coverage` lint rule: the
//! rule proves each field is *mentioned* by `normalized()`; this test
//! proves the zeroing actually happens on a populated report, including
//! fields added by future PRs (any new `*_us` field that serializes
//! nonzero after normalization fails here without any test edit).

use dice_system::dice::{scenarios, Campaign};
use dice_system::netsim::{SimDuration, SimTime};
use serde_json::Value;

/// Mirror of the lint's wall-clock field-name predicate.
fn is_wall_clock_name(name: &str) -> bool {
    name.starts_with("wall_")
        || name.ends_with("_us")
        || name.ends_with("_ms")
        || name.ends_with("_us_cum")
        || name.ends_with("_ms_cum")
        || name.ends_with("_micros")
}

fn is_zero(v: &Value) -> bool {
    matches!(v, Value::U64(0) | Value::I64(0)) || matches!(v, Value::F64(f) if *f == 0.0)
}

/// Recursively check `v`, accumulating the dotted path for diagnostics
/// and counting the wall-clock fields verified.
fn check(v: &Value, path: &str, in_perf: bool, checked: &mut usize) {
    match v {
        Value::Object(map) => {
            for (key, child) in map.iter() {
                let child_path = format!("{path}.{key}");
                if is_wall_clock_name(key) || in_perf {
                    assert!(
                        is_zero(child),
                        "normalized() left `{child_path}` nonzero: {child:?}"
                    );
                    *checked += 1;
                }
                check(child, &child_path, in_perf || key == "perf", checked);
            }
        }
        Value::Array(items) => {
            for (i, child) in items.iter().enumerate() {
                check(child, &format!("{path}[{i}]"), in_perf, checked);
            }
        }
        _ => {}
    }
}

#[test]
fn normalized_report_zeroes_every_wall_clock_and_perf_field() {
    let mut sim = scenarios::mixed_bgp_gossip(9, true);
    sim.run_until(SimTime::from_nanos(12_000_000_000));
    let report = Campaign::new(&sim)
        .executions(32)
        .validate_top(4)
        .horizon(SimDuration::from_secs(30))
        .run(&mut sim)
        .expect("mixed campaign runs");

    // The raw report must actually measure something, or "all zeroed"
    // would be vacuous.
    assert!(report.wall_us > 0, "raw report should carry wall time");

    let json = serde_json::to_string(&report.normalized()).expect("serializes");
    let value: Value = serde_json::from_str(&json).expect("parses back");
    let mut checked = 0usize;
    check(&value, "report", false, &mut checked);
    assert!(
        checked >= 10,
        "expected to verify many wall-clock/perf fields, saw {checked}"
    );
}
