//! Snapshot correctness across the stack: consistent snapshots of live BGP
//! systems replay to the same routing outcome as the live run, clones are
//! isolated, and checkpoint accounting is sane.

use dice_system::bgp::BgpRouter;
use dice_system::dice::scenarios;
use dice_system::dice::snapshot::take_consistent_snapshot;
use dice_system::netsim::{NodeId, SimDuration, SimTime, Simulator};
use proptest::prelude::*;
use std::collections::BTreeMap;

fn rib_fingerprint(sim: &Simulator) -> BTreeMap<(u32, String), String> {
    let mut out = BTreeMap::new();
    for id in sim.topology().node_ids() {
        if sim.crashed(id).is_some() {
            continue;
        }
        if let Some(r) = sim.node(id).as_any().downcast_ref::<BgpRouter>() {
            for (p, sel) in r.loc_rib().iter() {
                out.insert(
                    (id.0, p.to_string()),
                    format!("{}", sel.route.attrs.as_path),
                );
            }
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Mid-convergence consistent snapshots replay to exactly the live
    /// system's eventual routing state, for arbitrary seeds and snapshot
    /// instants.
    #[test]
    fn consistent_snapshot_replays_to_live_outcome(
        seed in 0u64..1000,
        snap_ms in 400u64..3000,
    ) {
        let mut live = scenarios::healthy_line(5, seed);
        live.run_until(SimTime::from_nanos(snap_ms * 1_000_000));
        let result = take_consistent_snapshot(&mut live, NodeId(2), SimDuration::from_secs(60));
        // Mid-burst snapshots can fail if a session resets; skip those runs.
        let Ok((shadow, metrics)) = result else { return Ok(()); };
        prop_assert_eq!(metrics.nodes, 5);

        let topo = live.topology().clone();
        let mut replay = Simulator::from_shadow(&shadow, &topo, seed ^ 0xABCD);
        replay.run_until_quiet(
            SimDuration::from_secs(5),
            shadow.base_time() + SimDuration::from_secs(300),
        );
        live.run_until_quiet(
            SimDuration::from_secs(5),
            SimTime::from_nanos(400_000_000_000),
        );
        prop_assert_eq!(rib_fingerprint(&replay), rib_fingerprint(&live));
    }

    /// Clones built from one shadow never interfere with each other.
    #[test]
    fn clones_are_mutually_isolated(seed in 0u64..1000) {
        let mut live = scenarios::healthy_line(4, seed);
        live.run_until(SimTime::from_nanos(20_000_000_000));
        let (shadow, _) =
            take_consistent_snapshot(&mut live, NodeId(0), SimDuration::from_secs(30))
                .expect("quiescent snapshot succeeds");
        let topo = live.topology().clone();

        let mut a = Simulator::from_shadow(&shadow, &topo, 1);
        let b = Simulator::from_shadow(&shadow, &topo, 1);
        // Crash a node in clone A; clone B and the live system are unmoved.
        a.inject_node_crash(NodeId(2));
        prop_assert!(a.crashed(NodeId(2)).is_some());
        prop_assert!(b.crashed(NodeId(2)).is_none());
        prop_assert!(live.crashed(NodeId(2)).is_none());
    }

    /// Checkpoint byte accounting grows monotonically with RIB content.
    #[test]
    fn checkpoint_bytes_track_state(extra in 1u32..40) {
        let small = scenarios::healthy_line(3, 7);
        let small_bytes: usize = small
            .topology()
            .node_ids()
            .map(|id| small.node(id).state_size())
            .sum();

        // Same topology, more originated prefixes per node.
        use dice_system::bgp::{BgpRouter as R, Ipv4Net, RouterConfig, RouterId};
        use dice_system::netsim::{LinkParams, Topology};
        let topo = Topology::line(3, LinkParams::fixed(SimDuration::from_millis(5)));
        let mut big = Simulator::new(topo.clone(), 7);
        for id in topo.node_ids() {
            let mut cfg = RouterConfig::minimal(
                scenarios::asn_of(id.0),
                RouterId(id.0 + 1),
            );
            for k in 0..extra {
                cfg = cfg.with_network(Ipv4Net::new(
                    0x0A00_0000 | (id.0 << 20) | (k << 8),
                    24,
                ));
            }
            for m in topo.neighbors(id) {
                cfg = cfg.with_neighbor(m, scenarios::asn_of(m.0), "all", "all");
            }
            big.set_node(id, Box::new(R::new(cfg)));
        }
        big.start();
        big.run_until(SimTime::from_nanos(30_000_000_000));
        let big_bytes: usize =
            big.topology().node_ids().map(|id| big.node(id).state_size()).sum();
        prop_assert!(big_bytes > small_bytes, "{big_bytes} <= {small_bytes}");
    }
}

#[test]
fn snapshot_of_oscillating_system_completes() {
    // Even a never-converging system can be consistently snapshotted:
    // markers ride the same channels as the churning updates.
    let mut live = scenarios::bad_gadget_scenario(42);
    live.run_until(SimTime::from_nanos(15_000_000_000));
    let (shadow, metrics) =
        take_consistent_snapshot(&mut live, NodeId(0), SimDuration::from_secs(30))
            .expect("snapshot completes under churn");
    assert_eq!(metrics.nodes, 4);
    // The shadow replays and keeps oscillating (the conflict is in state,
    // not an artifact of the snapshot).
    let topo = live.topology().clone();
    let mut replay = Simulator::from_shadow(&shadow, &topo, 3);
    let out = replay.run_until_quiet(
        SimDuration::from_secs(5),
        shadow.base_time() + SimDuration::from_secs(120),
    );
    assert_eq!(out, dice_system::netsim::QuietOutcome::TimedOut);
}
