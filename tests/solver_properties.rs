//! Property-based tests of the concolic engine: solver soundness (every
//! SAT model satisfies its system), negation-query semantics, and
//! concrete/symbolic evaluation agreement.

use dice_system::concolic::{
    BinOp, CmpOp, ConcolicCtx, Constraint, ExprArena, ExprId, SiteId, SolveResult, Solver, SymInput,
};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Shape {
    Bin(BinOp, Box<Shape>, Box<Shape>),
    Var(u8),   // input index 0..4
    Const(u8), // 8-bit constant
}

fn arb_shape() -> impl Strategy<Value = Shape> {
    let leaf = prop_oneof![
        (0u8..4).prop_map(Shape::Var),
        any::<u8>().prop_map(Shape::Const),
    ];
    leaf.prop_recursive(3, 16, 2, |inner| {
        (
            prop_oneof![
                Just(BinOp::Add),
                Just(BinOp::Sub),
                Just(BinOp::And),
                Just(BinOp::Or),
                Just(BinOp::Xor),
            ],
            inner.clone(),
            inner,
        )
            .prop_map(|(op, a, b)| Shape::Bin(op, Box::new(a), Box::new(b)))
    })
}

fn build(arena: &mut ExprArena, s: &Shape) -> ExprId {
    match s {
        Shape::Var(i) => arena.input(*i as u32),
        Shape::Const(c) => arena.constant(8, *c as u64),
        Shape::Bin(op, a, b) => {
            let ea = build(arena, a);
            let eb = build(arena, b);
            arena.bin(*op, 8, ea, eb)
        }
    }
}

fn arb_cmp() -> impl Strategy<Value = CmpOp> {
    prop_oneof![
        Just(CmpOp::Eq),
        Just(CmpOp::Ne),
        Just(CmpOp::Ult),
        Just(CmpOp::Ule)
    ]
}

proptest! {
    /// Soundness: whatever the solver answers SAT must check.
    #[test]
    fn sat_models_satisfy_their_systems(
        shapes in prop::collection::vec((arb_shape(), arb_cmp(), any::<u8>(), any::<bool>()), 1..5)
    ) {
        let mut arena = ExprArena::new();
        let mut cons: Vec<Constraint> = Vec::new();
        for (shape, op, k, want) in &shapes {
            let e = build(&mut arena, shape);
            let c = arena.constant(8, *k as u64);
            let cmp = arena.cmp(*op, e, c);
            cons.push((cmp, *want));
        }
        let mut solver = Solver::new();
        if let SolveResult::Sat(model) = solver.solve(&arena, &cons, &|_| 0) {
            prop_assert!(
                Solver::check(&arena, &cons, &model, &|_| 0),
                "solver produced a non-model"
            );
        }
    }

    /// Expression evaluation agrees with concrete concolic execution.
    #[test]
    fn concrete_symbolic_agreement(bytes in prop::collection::vec(any::<u8>(), 4..8)) {
        let mut ctx = ConcolicCtx::new(SymInput::all_symbolic(bytes.clone()));
        let a = ctx.read_u8(0);
        let b = ctx.read_u8(1);
        let c = ctx.read_u16_be(2);
        let sum = ctx.bin(BinOp::Add, a, b);
        let sum16 = ctx.zext(16, sum);
        let mix = ctx.bin(BinOp::Xor, sum16, c);
        // Symbolic expression evaluated under the same bytes equals the
        // concrete value computed during execution.
        let expr = mix.expr.expect("symbolic");
        let v = ctx.arena().eval(expr, &|i| Some(bytes[i as usize] as u64)).unwrap();
        prop_assert_eq!(v, mix.val);
    }

    /// Negating a recorded branch and re-running flips that branch.
    #[test]
    fn negation_actually_flips(byte in any::<u8>(), threshold in 1u8..255) {
        let program = |ctx: &mut ConcolicCtx| {
            let w = ctx.read_u8(0);
            let c = ctx.ult_const(w, threshold as u64);
            ctx.branch(SiteId(1), c)
        };
        let mut ctx = ConcolicCtx::new(SymInput::all_symbolic(vec![byte]));
        let taken = program(&mut ctx);
        let path = ctx.path().to_vec();
        prop_assert_eq!(path.len(), 1);

        let q = dice_system::concolic::negation_query(&path, 0);
        let mut solver = Solver::new();
        match solver.solve(ctx.arena(), &q, &|_| byte) {
            SolveResult::Sat(model) => {
                let new_byte = model.get(&0).copied().unwrap_or(byte);
                let mut ctx2 = ConcolicCtx::new(SymInput::all_symbolic(vec![new_byte]));
                let taken2 = program(&mut ctx2);
                prop_assert_eq!(taken2, !taken, "negated input must flip the branch");
            }
            SolveResult::Unsat => {
                // Only possible if the branch is a tautology over bytes,
                // which `1 <= threshold <= 254` rules out.
                prop_assert!(false, "branch must be negatable");
            }
            SolveResult::Unknown => {} // budget, acceptable
        }
    }

    /// Path signatures are stable for equal paths and sensitive to inputs
    /// that diverge.
    #[test]
    fn path_signature_stability(bytes in prop::collection::vec(any::<u8>(), 2..6)) {
        let run = |bytes: &[u8]| {
            let mut ctx = ConcolicCtx::new(SymInput::all_symbolic(bytes.to_vec()));
            let w = ctx.read_u8(0);
            let c = ctx.ult_const(w, 128);
            ctx.branch(SiteId(1), c);
            ctx.path_signature()
        };
        prop_assert_eq!(run(&bytes), run(&bytes));
    }
}

#[test]
fn unsat_on_contradiction_is_proven() {
    let mut arena = ExprArena::new();
    let x = arena.input(0);
    let k = arena.constant(8, 10);
    let c = arena.cmp(CmpOp::Ult, x, k);
    let mut solver = Solver::new();
    // x < 10 AND NOT(x < 10) is a contradiction.
    let r = solver.solve(&arena, &[(c, true), (c, false)], &|_| 0);
    assert_eq!(r, SolveResult::Unsat);
}
