//! Property-based tests of the wire codecs: encode/decode inversion on
//! arbitrary valid messages, decoder totality on arbitrary bytes, and the
//! zero-copy contract — `encode_into` a dirty reused buffer is
//! byte-identical to a fresh `encode`, for both protocols.

use dice_system::bgp::{
    decode, encode, AsPath, AsPathSegment, Asn, Community, Ipv4Addr, Ipv4Net, Message,
    NotificationMsg, OpenMsg, Origin, PathAttrs, RouterId, SegmentKind, UpdateMsg,
};
use dice_system::gossip::{GossipFrame, Rumor, MAX_DIGEST_ENTRIES, MAX_PAYLOAD, MAX_TTL};
use proptest::prelude::*;

fn arb_prefix() -> impl Strategy<Value = Ipv4Net> {
    (any::<u32>(), 0u8..=32).prop_map(|(addr, len)| Ipv4Net::new(addr, len))
}

fn arb_origin() -> impl Strategy<Value = Origin> {
    prop_oneof![
        Just(Origin::Igp),
        Just(Origin::Egp),
        Just(Origin::Incomplete)
    ]
}

fn arb_segment() -> impl Strategy<Value = AsPathSegment> {
    (
        prop_oneof![Just(SegmentKind::Set), Just(SegmentKind::Sequence)],
        prop::collection::vec(any::<u16>().prop_map(Asn), 1..8),
    )
        .prop_map(|(kind, asns)| AsPathSegment { kind, asns })
}

fn arb_attrs() -> impl Strategy<Value = PathAttrs> {
    (
        arb_origin(),
        prop::collection::vec(arb_segment(), 0..4),
        1u32..u32::MAX, // next hop nonzero, not all-ones
        prop::option::of(any::<u32>()),
        prop::option::of(any::<u32>()),
        any::<bool>(),
        prop::option::of((any::<u16>(), any::<u32>())),
        prop::collection::btree_set(any::<u32>().prop_map(Community), 0..6),
    )
        .prop_map(
            |(origin, segments, nh, med, local_pref, atomic, aggr, communities)| PathAttrs {
                origin,
                as_path: AsPath { segments },
                next_hop: Ipv4Addr(nh),
                med,
                local_pref,
                atomic_aggregate: atomic,
                aggregator: aggr.map(|(a, ip)| (Asn(a), Ipv4Addr(ip))),
                communities,
                unknown: Vec::new(),
            },
        )
}

fn arb_update() -> impl Strategy<Value = UpdateMsg> {
    (
        prop::collection::vec(arb_prefix(), 0..5),
        arb_attrs(),
        prop::collection::vec(arb_prefix(), 1..5),
    )
        .prop_map(|(withdrawn, attrs, nlri)| UpdateMsg {
            withdrawn,
            attrs: Some(attrs),
            nlri,
        })
}

fn arb_message() -> impl Strategy<Value = Message> {
    prop_oneof![
        arb_update().prop_map(Message::Update),
        (any::<u16>(), prop_oneof![Just(0u16), 3u16..], any::<u32>()).prop_map(
            |(asn, hold, id)| Message::Open(OpenMsg {
                version: 4,
                asn: Asn(asn),
                hold_time: hold,
                router_id: RouterId(id),
                opt_params: vec![],
            })
        ),
        (
            any::<u8>(),
            any::<u8>(),
            prop::collection::vec(any::<u8>(), 0..32)
        )
            .prop_map(
                |(code, subcode, data)| Message::Notification(NotificationMsg {
                    code,
                    subcode,
                    data
                })
            ),
        Just(Message::Keepalive),
    ]
}

fn arb_gossip_frame() -> impl Strategy<Value = GossipFrame> {
    prop_oneof![
        (
            any::<u16>(),
            any::<u32>(),
            any::<u16>(),
            0u8..=MAX_TTL,
            prop::collection::vec(any::<u8>(), 0..=MAX_PAYLOAD),
        )
            .prop_map(
                |(topic, id, origin, ttl, payload)| GossipFrame::Rumor(Rumor {
                    topic,
                    id,
                    origin,
                    ttl,
                    payload,
                })
            ),
        prop::collection::vec(
            (any::<u16>(), any::<u32>()),
            0..=MAX_DIGEST_ENTRIES as usize
        )
        .prop_map(GossipFrame::Digest),
        any::<u16>().prop_map(|topic| GossipFrame::Subscribe { topic }),
    ]
}

proptest! {
    #[test]
    fn update_roundtrip(upd in arb_update()) {
        let msg = Message::Update(upd);
        let bytes = encode(&msg);
        let (decoded, used) = decode(&bytes).expect("self-encoded message decodes");
        prop_assert_eq!(used, bytes.len());
        prop_assert_eq!(decoded, msg);
    }

    #[test]
    fn open_roundtrip(asn in any::<u16>(), hold in prop_oneof![Just(0u16), 3u16..], id in any::<u32>()) {
        let msg = Message::Open(OpenMsg {
            version: 4,
            asn: Asn(asn),
            hold_time: hold,
            router_id: RouterId(id),
            opt_params: vec![],
        });
        let bytes = encode(&msg);
        let (decoded, _) = decode(&bytes).expect("valid open decodes");
        prop_assert_eq!(decoded, msg);
    }

    #[test]
    fn notification_roundtrip(code in any::<u8>(), sub in any::<u8>(), data in prop::collection::vec(any::<u8>(), 0..64)) {
        let msg = Message::Notification(NotificationMsg { code, subcode: sub, data });
        let bytes = encode(&msg);
        let (decoded, _) = decode(&bytes).expect("notification decodes");
        prop_assert_eq!(decoded, msg);
    }

    /// The decoder is total: arbitrary bytes never panic.
    #[test]
    fn decoder_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        let _ = decode(&bytes);
    }

    /// Corrupting any single byte of a valid message either still decodes
    /// or produces a structured error — never a panic.
    #[test]
    fn single_byte_corruption_is_handled(upd in arb_update(), pos_seed in any::<usize>(), val in any::<u8>()) {
        let mut bytes = encode(&Message::Update(upd));
        let pos = pos_seed % bytes.len();
        bytes[pos] = val;
        let _ = decode(&bytes);
    }

    /// Zero-copy contract (BGP): `encode_into` a dirty reused buffer is
    /// byte-identical to a fresh `encode`, and decodes back to the same
    /// message. The buffer is pre-filled with garbage of arbitrary length
    /// to model a pooled buffer carrying a previous datagram's bytes.
    #[test]
    fn bgp_encode_into_matches_encode_on_dirty_buffers(
        msg in arb_message(),
        garbage in prop::collection::vec(any::<u8>(), 0..256),
    ) {
        let fresh = encode(&msg);
        let mut reused = garbage;
        dice_system::bgp::wire::encode_into(&msg, &mut reused);
        prop_assert_eq!(&reused, &fresh, "reused buffer must match fresh encode");
        let (decoded, used) = decode(&reused).expect("self-encoded message decodes");
        prop_assert_eq!(used, reused.len());
        prop_assert_eq!(decoded, msg);
    }

    /// Zero-copy contract (gossip): same as above for the datagram codec.
    #[test]
    fn gossip_encode_into_matches_encode_on_dirty_buffers(
        frame in arb_gossip_frame(),
        garbage in prop::collection::vec(any::<u8>(), 0..256),
    ) {
        let fresh = dice_system::gossip::encode(&frame);
        let mut reused = garbage;
        dice_system::gossip::wire::encode_into(&frame, &mut reused);
        prop_assert_eq!(&reused, &fresh, "reused buffer must match fresh encode");
        let decoded = dice_system::gossip::decode(&reused).expect("self-encoded frame decodes");
        prop_assert_eq!(decoded, frame);
    }

    /// The gossip decoder is total: arbitrary bytes never panic.
    #[test]
    fn gossip_decoder_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        let _ = dice_system::gossip::decode(&bytes);
    }

    /// Prefix canonicalization: parse/display roundtrip.
    #[test]
    fn prefix_roundtrip(p in arb_prefix()) {
        let s = p.to_string();
        let back: Ipv4Net = s.parse().expect("display parses");
        prop_assert_eq!(back, p);
    }

    /// covers() is a partial order consistent with overlaps().
    #[test]
    fn prefix_cover_laws(a in arb_prefix(), b in arb_prefix()) {
        prop_assert!(a.covers(&a));
        if a.covers(&b) && b.covers(&a) {
            prop_assert_eq!(a, b);
        }
        if a.covers(&b) {
            prop_assert!(a.overlaps(&b) && b.overlaps(&a));
        }
    }
}
