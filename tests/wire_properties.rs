//! Property-based tests of the BGP wire codec: encode/decode inversion on
//! arbitrary valid messages, and decoder totality on arbitrary bytes.

use dice_system::bgp::{
    decode, encode, AsPath, AsPathSegment, Asn, Community, Ipv4Addr, Ipv4Net, Message,
    NotificationMsg, OpenMsg, Origin, PathAttrs, RouterId, SegmentKind, UpdateMsg,
};
use proptest::prelude::*;

fn arb_prefix() -> impl Strategy<Value = Ipv4Net> {
    (any::<u32>(), 0u8..=32).prop_map(|(addr, len)| Ipv4Net::new(addr, len))
}

fn arb_origin() -> impl Strategy<Value = Origin> {
    prop_oneof![
        Just(Origin::Igp),
        Just(Origin::Egp),
        Just(Origin::Incomplete)
    ]
}

fn arb_segment() -> impl Strategy<Value = AsPathSegment> {
    (
        prop_oneof![Just(SegmentKind::Set), Just(SegmentKind::Sequence)],
        prop::collection::vec(any::<u16>().prop_map(Asn), 1..8),
    )
        .prop_map(|(kind, asns)| AsPathSegment { kind, asns })
}

fn arb_attrs() -> impl Strategy<Value = PathAttrs> {
    (
        arb_origin(),
        prop::collection::vec(arb_segment(), 0..4),
        1u32..u32::MAX, // next hop nonzero, not all-ones
        prop::option::of(any::<u32>()),
        prop::option::of(any::<u32>()),
        any::<bool>(),
        prop::option::of((any::<u16>(), any::<u32>())),
        prop::collection::btree_set(any::<u32>().prop_map(Community), 0..6),
    )
        .prop_map(
            |(origin, segments, nh, med, local_pref, atomic, aggr, communities)| PathAttrs {
                origin,
                as_path: AsPath { segments },
                next_hop: Ipv4Addr(nh),
                med,
                local_pref,
                atomic_aggregate: atomic,
                aggregator: aggr.map(|(a, ip)| (Asn(a), Ipv4Addr(ip))),
                communities,
                unknown: Vec::new(),
            },
        )
}

fn arb_update() -> impl Strategy<Value = UpdateMsg> {
    (
        prop::collection::vec(arb_prefix(), 0..5),
        arb_attrs(),
        prop::collection::vec(arb_prefix(), 1..5),
    )
        .prop_map(|(withdrawn, attrs, nlri)| UpdateMsg {
            withdrawn,
            attrs: Some(attrs),
            nlri,
        })
}

proptest! {
    #[test]
    fn update_roundtrip(upd in arb_update()) {
        let msg = Message::Update(upd);
        let bytes = encode(&msg);
        let (decoded, used) = decode(&bytes).expect("self-encoded message decodes");
        prop_assert_eq!(used, bytes.len());
        prop_assert_eq!(decoded, msg);
    }

    #[test]
    fn open_roundtrip(asn in any::<u16>(), hold in prop_oneof![Just(0u16), 3u16..], id in any::<u32>()) {
        let msg = Message::Open(OpenMsg {
            version: 4,
            asn: Asn(asn),
            hold_time: hold,
            router_id: RouterId(id),
            opt_params: vec![],
        });
        let bytes = encode(&msg);
        let (decoded, _) = decode(&bytes).expect("valid open decodes");
        prop_assert_eq!(decoded, msg);
    }

    #[test]
    fn notification_roundtrip(code in any::<u8>(), sub in any::<u8>(), data in prop::collection::vec(any::<u8>(), 0..64)) {
        let msg = Message::Notification(NotificationMsg { code, subcode: sub, data });
        let bytes = encode(&msg);
        let (decoded, _) = decode(&bytes).expect("notification decodes");
        prop_assert_eq!(decoded, msg);
    }

    /// The decoder is total: arbitrary bytes never panic.
    #[test]
    fn decoder_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        let _ = decode(&bytes);
    }

    /// Corrupting any single byte of a valid message either still decodes
    /// or produces a structured error — never a panic.
    #[test]
    fn single_byte_corruption_is_handled(upd in arb_update(), pos_seed in any::<usize>(), val in any::<u8>()) {
        let mut bytes = encode(&Message::Update(upd));
        let pos = pos_seed % bytes.len();
        bytes[pos] = val;
        let _ = decode(&bytes);
    }

    /// Prefix canonicalization: parse/display roundtrip.
    #[test]
    fn prefix_roundtrip(p in arb_prefix()) {
        let s = p.to_string();
        let back: Ipv4Net = s.parse().expect("display parses");
        prop_assert_eq!(back, p);
    }

    /// covers() is a partial order consistent with overlaps().
    #[test]
    fn prefix_cover_laws(a in arb_prefix(), b in arb_prefix()) {
        prop_assert!(a.covers(&a));
        if a.covers(&b) && b.covers(&a) {
            prop_assert_eq!(a, b);
        }
        if a.covers(&b) {
            prop_assert!(a.overlaps(&b) && b.overlaps(&a));
        }
    }
}
