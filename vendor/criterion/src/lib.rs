//! Minimal, API-compatible stand-in for the `criterion` crate, vendored
//! because this workspace builds offline (see `vendor/README.md`).
//!
//! Implements the surface the workspace's benches use: [`Criterion`] with
//! builder-style tuning, benchmark groups, [`BenchmarkId`], `Bencher::iter`,
//! and the [`criterion_group!`] / [`criterion_main!`] macros. Measurement is
//! a straightforward warm-up + timed-batches loop reporting mean time per
//! iteration; there is no statistical analysis, plotting, or HTML output.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

/// Top-level benchmark driver.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 100,
            measurement_time: Duration::from_secs(5),
            warm_up_time: Duration::from_secs(3),
        }
    }
}

impl Criterion {
    /// Number of samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Total time to spend measuring each benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Time to spend warming up each benchmark.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Run a single benchmark outside a group.
    pub fn bench_function<F>(&mut self, name: impl fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = name.to_string();
        run_benchmark(self, &label, f);
        self
    }
}

/// Identifier for a parameterized benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Build an id from a function name and a parameter.
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function.into(), parameter),
        }
    }

    /// Build an id from a parameter alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label)
    }
}

/// A named collection of benchmarks sharing the parent's tuning.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Run one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id);
        run_benchmark(self.criterion, &label, f);
        self
    }

    /// Run one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        run_benchmark(self.criterion, &label, |b| f(b, input));
        self
    }

    /// Finish the group (for API compatibility; no-op).
    pub fn finish(self) {}
}

/// Passed to benchmark closures; measures the routine.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine`, running it `self.iters` times.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(c: &Criterion, label: &str, mut f: F) {
    // Warm-up: run single iterations until the warm-up budget is spent, and
    // estimate the per-iteration cost along the way.
    let warm_start = Instant::now();
    let mut warm_iters: u64 = 0;
    while warm_start.elapsed() < c.warm_up_time {
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        warm_iters += 1;
        if warm_iters >= 1_000_000 {
            break;
        }
    }
    let per_iter = warm_start.elapsed().as_nanos().max(1) / u128::from(warm_iters.max(1));

    // Size each sample so all samples together fit the measurement budget.
    let budget_per_sample = c.measurement_time.as_nanos().max(1) / (c.sample_size as u128);
    let iters_per_sample = (budget_per_sample / per_iter.max(1)).clamp(1, 10_000_000) as u64;

    let mut total_iters: u64 = 0;
    let mut total_time = Duration::ZERO;
    let mut best = Duration::MAX;
    for _ in 0..c.sample_size {
        let mut b = Bencher {
            iters: iters_per_sample,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        let per = b.elapsed / (iters_per_sample as u32).max(1);
        best = best.min(per);
        total_iters += iters_per_sample;
        total_time += b.elapsed;
    }
    let mean_ns = total_time.as_nanos() / u128::from(total_iters.max(1));
    println!(
        "{label:<50} time: [mean {} / best {}]  ({} samples x {} iters)",
        fmt_ns(mean_ns),
        fmt_ns(best.as_nanos()),
        c.sample_size,
        iters_per_sample,
    );
}

fn fmt_ns(ns: u128) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} us", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// Declare a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declare the benchmark binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Criterion {
        Criterion::default()
            .sample_size(2)
            .measurement_time(Duration::from_millis(20))
            .warm_up_time(Duration::from_millis(5))
    }

    #[test]
    fn group_and_input_benches_run() {
        let mut c = quick();
        let mut group = c.benchmark_group("g");
        group.bench_function("add", |b| b.iter(|| 1u64 + 1));
        group.bench_with_input(BenchmarkId::from_parameter(3u32), &3u32, |b, &n| {
            b.iter(|| n * n)
        });
        group.finish();
    }

    #[test]
    fn id_formats() {
        assert_eq!(BenchmarkId::from_parameter(42).to_string(), "42");
        assert_eq!(BenchmarkId::new("f", 7).to_string(), "f/7");
    }
}
