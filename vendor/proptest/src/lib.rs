//! Minimal, API-compatible stand-in for the `proptest` crate, vendored
//! because this workspace builds offline (see `vendor/README.md`).
//!
//! Implements the subset this workspace's property tests use:
//!
//! * [`Strategy`] with `prop_map`, `prop_recursive`, `boxed`;
//! * [`any`] / [`Arbitrary`] for the integer primitives and `bool`;
//! * range strategies (`0u8..4`, `0u8..=32`, `3u16..`);
//! * tuple strategies up to arity 8;
//! * [`collection::vec`], [`collection::btree_set`], [`option::of`],
//!   [`Just`], [`prop_oneof!`];
//! * the [`proptest!`] runner macro with `#![proptest_config(..)]`,
//!   [`prop_assert!`] and [`prop_assert_eq!`];
//! * greedy linear shrinking of failing cases for integer, `Vec` and
//!   `Option` strategies (composite strategies such as `prop_map` /
//!   `prop_oneof!` pass through unshrunk).
//!
//! Differences from real proptest: shrinking is greedy-linear over
//! [`Strategy::shrink`] candidates rather than value-tree based, and
//! generation is deterministic per test name (override the case count with
//! `PROPTEST_CASES`).

#![forbid(unsafe_code)]

use std::collections::BTreeSet;
use std::marker::PhantomData;
use std::ops::{Range, RangeFrom, RangeInclusive};
use std::rc::Rc;

// ---------------------------------------------------------------------------
// RNG
// ---------------------------------------------------------------------------

/// Deterministic generator driving value production (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed directly.
    pub fn new(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x5DEE_CE66_D123_4567,
        }
    }

    /// Seed deterministically from a test name.
    pub fn for_test(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng::new(h)
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, bound)` via widening-multiply rejection.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0);
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (bound as u128);
            let lo = m as u64;
            if lo >= bound || lo >= bound.wrapping_neg() % bound {
                return (m >> 64) as u64;
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Strategy core
// ---------------------------------------------------------------------------

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Produce one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Propose strictly "smaller" candidates derived from `value`, best
    /// (smallest) first. The [`proptest!`] runner greedily adopts any
    /// candidate for which the property still fails and repeats until no
    /// candidate improves — greedy linear shrinking. Strategies without a
    /// meaningful order (mapped, unioned, recursive) return nothing.
    fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
        let _ = value;
        Vec::new()
    }

    /// Transform generated values.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Build a recursive strategy: `self` is the leaf; `f` receives a
    /// strategy for the recursion sites and returns the branch strategy.
    /// `depth` bounds the nesting; the size/branch hints are accepted for
    /// API compatibility and ignored.
    fn prop_recursive<F, S>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        f: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + Clone + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S,
        S: Strategy<Value = Self::Value> + 'static,
    {
        let mut cur = self.clone().boxed();
        for _ in 0..depth {
            let branch = f(cur).boxed();
            cur = Union::new(vec![self.clone().boxed(), branch]).boxed();
        }
        cur
    }

    /// Type-erase this strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

trait DynStrategy<T> {
    fn generate_dyn(&self, rng: &mut TestRng) -> T;
    fn shrink_dyn(&self, value: &T) -> Vec<T>;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
    fn shrink_dyn(&self, value: &S::Value) -> Vec<S::Value> {
        self.shrink(value)
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T>(Rc<dyn DynStrategy<T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate_dyn(rng)
    }
    fn shrink(&self, value: &T) -> Vec<T> {
        self.0.shrink_dyn(value)
    }
}

/// `prop_map` adapter.
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always produces a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among same-typed strategies (backs [`prop_oneof!`]).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Choose uniformly among `options`.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union {
            options: self.options.clone(),
        }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].generate(rng)
    }
}

// ---------------------------------------------------------------------------
// any / Arbitrary
// ---------------------------------------------------------------------------

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Produce an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;

    /// Shrink candidates for a value of this type (see
    /// [`Strategy::shrink`]). Default: none.
    fn arbitrary_shrink(&self) -> Vec<Self> {
        Vec::new()
    }
}

macro_rules! arb_int {
    ($($t:ty),*) => { $(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
            /// Greedy linear candidates toward zero: zero itself, the
            /// halfway point, and one step closer.
            fn arbitrary_shrink(&self) -> Vec<Self> {
                let zero: $t = 0;
                let v = *self;
                if v == zero {
                    return Vec::new();
                }
                let mut out = vec![zero];
                let half = v / 2;
                if half != zero && half != v {
                    out.push(half);
                }
                let step = if v > zero { v - 1 } else { v + 1 };
                if step != zero && step != half && step != v {
                    out.push(step);
                }
                out
            }
        }
    )* };
}
arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
    fn arbitrary_shrink(&self) -> Vec<Self> {
        if *self {
            vec![false]
        } else {
            Vec::new()
        }
    }
}

/// Strategy for any value of `T` (see [`any`]).
pub struct Any<T>(PhantomData<T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        Any(PhantomData)
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
    fn shrink(&self, value: &T) -> Vec<T> {
        value.arbitrary_shrink()
    }
}

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

// ---------------------------------------------------------------------------
// Range strategies
// ---------------------------------------------------------------------------

macro_rules! range_strategies {
    ($($t:ty),*) => { $(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64) - (self.start as u64);
                self.start + (rng.below(span) as $t)
            }
            fn shrink(&self, value: &$t) -> Vec<$t> {
                shrink_toward(self.start, *value)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u64) - (lo as u64);
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (rng.below(span + 1) as $t)
            }
            fn shrink(&self, value: &$t) -> Vec<$t> {
                shrink_toward(*self.start(), *value)
            }
        }
        impl Strategy for RangeFrom<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                (self.start..=<$t>::MAX).generate(rng)
            }
            fn shrink(&self, value: &$t) -> Vec<$t> {
                shrink_toward(self.start, *value)
            }
        }
    )* };
}
range_strategies!(u8, u16, u32, u64, usize);

/// Greedy linear candidates toward a range's lower bound: the bound
/// itself, the halfway point, and one step closer.
fn shrink_toward<T>(lo: T, v: T) -> Vec<T>
where
    T: Copy + PartialOrd + PartialEq + core::ops::Add<Output = T> + core::ops::Sub<Output = T>,
    u64: TryFrom<T>,
    T: TryFrom<u64>,
{
    if v <= lo {
        return Vec::new();
    }
    let lo64 = u64::try_from(lo).unwrap_or(0);
    let v64 = u64::try_from(v).unwrap_or(0);
    let mut out64 = vec![lo64];
    let mid = lo64 + (v64 - lo64) / 2;
    if mid != lo64 && mid != v64 {
        out64.push(mid);
    }
    if v64 - 1 != lo64 && v64 - 1 != mid {
        out64.push(v64 - 1);
    }
    out64
        .into_iter()
        .filter_map(|x| T::try_from(x).ok())
        .collect()
}

// ---------------------------------------------------------------------------
// Tuple strategies
// ---------------------------------------------------------------------------

macro_rules! tuple_strategies {
    ($(($($s:ident),+)),+ $(,)?) => { $(
        #[allow(non_snake_case)]
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($s,)+) = self;
                ($($s.generate(rng),)+)
            }
        }
    )+ };
}
tuple_strategies!(
    (A),
    (A, B),
    (A, B, C),
    (A, B, C, D),
    (A, B, C, D, E),
    (A, B, C, D, E, F),
    (A, B, C, D, E, F, G),
    (A, B, C, D, E, F, G, H),
);

// ---------------------------------------------------------------------------
// Collections and option
// ---------------------------------------------------------------------------

/// Size specification for collection strategies.
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    /// Exclusive.
    hi: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        SizeRange {
            lo: r.start,
            hi: r.end.max(r.start + 1),
        }
    }
}
impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange {
            lo: *r.start(),
            hi: r.end() + 1,
        }
    }
}
impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::*;

    /// Strategy for `Vec<T>` with length in the given range.
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    impl<S: Clone> Clone for VecStrategy<S> {
        fn clone(&self) -> Self {
            VecStrategy {
                elem: self.elem.clone(),
                size: self.size.clone(),
            }
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: Clone,
    {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span.max(1)) as usize;
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
        /// Greedy linear candidates: shorter prefixes first (respecting
        /// the strategy's minimum length), then element-wise shrinks of
        /// each position via the element strategy.
        fn shrink(&self, value: &Vec<S::Value>) -> Vec<Vec<S::Value>> {
            let mut out = Vec::new();
            let lo = self.size.lo;
            let n = value.len();
            if n > lo {
                out.push(value[..lo].to_vec());
                let half = lo + (n - lo) / 2;
                if half != lo && half != n {
                    out.push(value[..half].to_vec());
                }
                if n - 1 != lo && n - 1 != half {
                    out.push(value[..n - 1].to_vec());
                }
            }
            for i in 0..n {
                for cand in self.elem.shrink(&value[i]).into_iter().take(2) {
                    let mut v = value.clone();
                    v[i] = cand;
                    out.push(v);
                }
            }
            out
        }
    }

    /// `prop::collection::vec`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    /// Strategy for `BTreeSet<T>`.
    pub struct BTreeSetStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let want = self.size.lo + rng.below(span.max(1)) as usize;
            let mut out = BTreeSet::new();
            // Bounded attempts: duplicates may make the set smaller than
            // `want`, matching proptest's best-effort behavior.
            for _ in 0..want * 4 {
                if out.len() >= want {
                    break;
                }
                out.insert(self.elem.generate(rng));
            }
            out
        }
    }

    /// `prop::collection::btree_set`.
    pub fn btree_set<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        BTreeSetStrategy {
            elem,
            size: size.into(),
        }
    }
}

/// Option strategies (`prop::option`).
pub mod option {
    use super::*;

    /// Strategy for `Option<T>`: `None` one time in four.
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
        fn shrink(&self, value: &Option<S::Value>) -> Vec<Option<S::Value>> {
            match value {
                Some(inner) => {
                    let mut out = vec![None];
                    out.extend(self.inner.shrink(inner).into_iter().take(2).map(Some));
                    out
                }
                None => Vec::new(),
            }
        }
    }

    /// `prop::option::of`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }
}

// ---------------------------------------------------------------------------
// Runner configuration and errors
// ---------------------------------------------------------------------------

/// Per-test configuration (`#![proptest_config(..)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(64);
        ProptestConfig { cases }
    }
}

/// Implementation detail of [`proptest!`]: pins the parameter type of the
/// case-body closure to the type of `_witness`, so the closure's body can
/// be type-checked without explicit annotations (which the macro cannot
/// name) and then re-invoked against shrink candidates.
#[doc(hidden)]
pub fn __bind_case<T, F>(_witness: &T, f: F) -> F
where
    F: Fn(T) -> Result<(), TestCaseError>,
{
    f
}

/// A failed property within a test case.
#[derive(Debug, Clone)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Build a failure with a message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Uniform choice among strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

/// Fallible assertion inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fallible equality assertion inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), l, r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)+), l, r
            )));
        }
    }};
}

/// Define property tests. Each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => { $(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::for_test(stringify!($name));
            for case in 0..config.cases {
                $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                // Re-runnable body over cloned inputs, so failing cases
                // can be replayed against shrink candidates.
                let run_case = $crate::__bind_case(
                    &($(::std::clone::Clone::clone(&$arg),)+),
                    |($($arg,)+)| -> ::std::result::Result<(), $crate::TestCaseError> {
                        $(let _ = &$arg;)+
                        $body
                        ::std::result::Result::Ok(())
                    },
                );
                let first = run_case(($(::std::clone::Clone::clone(&$arg),)+));
                if let ::std::result::Result::Err(e) = first {
                    // Greedy linear shrinking: one argument at a time,
                    // adopt any candidate that still fails, repeat until
                    // no argument improves (or the effort cap is hit).
                    $(let mut $arg = $arg;)+
                    let mut last_err = e;
                    let mut shrinks = 0usize;
                    loop {
                        let mut improved = false;
                        $crate::__proptest_shrink_args!(
                            run_case, shrinks, last_err, improved,
                            ($($arg),+);
                            $(($arg, $strat))+
                        );
                        if !improved || shrinks >= 512 {
                            break;
                        }
                    }
                    let described = {
                        let mut s = ::std::string::String::new();
                        $(
                            s.push_str(stringify!($arg));
                            s.push_str(" = ");
                            s.push_str(&format!("{:?}; ", &$arg));
                        )+
                        s
                    };
                    panic!(
                        "proptest case {}/{} failed (after {} shrinks): {}\n  minimized inputs: {}",
                        case + 1, config.cases, shrinks, last_err, described
                    );
                }
            }
        }
    )* };
}

/// Implementation detail of [`proptest!`]: one greedy shrink pass over
/// each `(argument, strategy)` pair in turn, replaying the property with
/// the other arguments held at their current values.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_shrink_args {
    ($runner:ident, $shrinks:ident, $last_err:ident, $improved:ident,
     ($($all:ident),+);) => {};
    ($runner:ident, $shrinks:ident, $last_err:ident, $improved:ident,
     ($($all:ident),+);
     ($arg:ident, $strat:expr) $($rest:tt)*) => {
        loop {
            let mut advanced = false;
            let candidates = $crate::Strategy::shrink(&($strat), &$arg);
            for cand in candidates {
                let prev = ::std::mem::replace(&mut $arg, cand);
                match $runner(($(::std::clone::Clone::clone(&$all),)+)) {
                    ::std::result::Result::Err(e) => {
                        // Still failing on the smaller input: adopt it.
                        $last_err = e;
                        $shrinks += 1;
                        $improved = true;
                        advanced = true;
                        break;
                    }
                    ::std::result::Result::Ok(()) => {
                        $arg = prev;
                    }
                }
            }
            if !advanced || $shrinks >= 512 {
                break;
            }
        }
        $crate::__proptest_shrink_args!(
            $runner, $shrinks, $last_err, $improved,
            ($($all),+);
            $($rest)*
        );
    };
}

#[cfg(test)]
mod tests {
    use crate as proptest;
    use proptest::prelude::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::new(1);
        for _ in 0..1000 {
            let v = (3u8..7).generate(&mut rng);
            assert!((3..7).contains(&v));
            let w = (0u8..=255).generate(&mut rng);
            let _ = w;
            let x = (250u16..).generate(&mut rng);
            assert!(x >= 250);
        }
    }

    #[test]
    fn union_covers_all_options() {
        let s = prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
        let mut rng = TestRng::new(2);
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..200 {
            seen.insert(s.generate(&mut rng));
        }
        assert_eq!(seen.into_iter().collect::<Vec<_>>(), vec![1, 2, 3]);
    }

    #[test]
    fn vec_lengths_in_range() {
        let s = prop::collection::vec(any::<u8>(), 2..5);
        let mut rng = TestRng::new(3);
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!((2..5).contains(&v.len()), "len {}", v.len());
        }
    }

    #[test]
    fn recursive_strategies_terminate() {
        #[derive(Debug, Clone)]
        enum Tree {
            #[allow(dead_code)] // payload exercises generation, never read back
            Leaf(u8),
            Node(Box<Tree>, Box<Tree>),
        }
        fn depth(t: &Tree) -> u32 {
            match t {
                Tree::Leaf(_) => 0,
                Tree::Node(a, b) => 1 + depth(a).max(depth(b)),
            }
        }
        let s = any::<u8>()
            .prop_map(Tree::Leaf)
            .prop_recursive(3, 16, 2, |inner| {
                (inner.clone(), inner).prop_map(|(a, b)| Tree::Node(Box::new(a), Box::new(b)))
            });
        let mut rng = TestRng::new(4);
        for _ in 0..500 {
            assert!(depth(&s.generate(&mut rng)) <= 3);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_runs_and_asserts(a in 0u32..100, b in any::<bool>()) {
            prop_assert!(a < 100);
            prop_assert_eq!(b, b);
            if b {
                return Ok(());
            }
        }
    }

    #[test]
    fn integer_shrink_proposes_smaller_candidates() {
        let s = 3u32..1000;
        let cands = s.shrink(&637);
        assert!(cands.contains(&3), "range start proposed: {cands:?}");
        assert!(cands.iter().all(|&c| (3..637).contains(&c)), "{cands:?}");
        assert!(s.shrink(&3).is_empty(), "minimum does not shrink");
        assert!((0u8..=9).shrink(&0).is_empty());
        assert_eq!(any::<u64>().shrink(&1), vec![0]);
    }

    #[test]
    fn vec_shrink_drops_elements_and_shrinks_them() {
        let s = prop::collection::vec(any::<u8>(), 2..10);
        let v = vec![9u8, 8, 7, 6];
        let cands = s.shrink(&v);
        assert!(cands.contains(&vec![9, 8]), "min-length prefix: {cands:?}");
        assert!(cands.contains(&vec![9, 8, 7]), "one shorter: {cands:?}");
        assert!(
            cands.contains(&vec![0, 8, 7, 6]),
            "element shrink: {cands:?}"
        );
        assert!(s.shrink(&vec![0u8, 0]).is_empty(), "fully minimal");
    }

    // Regression: a seeded failure minimizes. The property fails whenever
    // `v >= 10` or `bytes.len() >= 3`; greedy linear shrinking must walk
    // the failing case down to the boundary (`v == 10` with minimal bytes,
    // or `len == 3` of zeros with minimal v).
    proptest! {
        #![proptest_config(ProptestConfig::with_cases(4))]

        fn seeded_failure_minimizes(v in 0u32..1000, bytes in prop::collection::vec(any::<u8>(), 0..20)) {
            prop_assert!(v < 10 && bytes.len() < 3, "boundary crossed");
        }
    }

    #[test]
    fn shrinking_minimizes_seeded_failure() {
        let outcome = std::panic::catch_unwind(seeded_failure_minimizes);
        let payload = outcome.expect_err("property must fail on seeded inputs");
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
            .expect("string panic payload");
        assert!(msg.contains("minimized inputs:"), "{msg}");
        // Greedy shrinking drives each argument to its smallest failing
        // value given the other: either v hit the boundary 10 with bytes
        // fully minimized, or bytes hit length 3 (of zeros) with v at 0.
        let minimized_v = msg.contains("v = 10;") && msg.contains("bytes = [];");
        let minimized_bytes = msg.contains("v = 0;") && msg.contains("bytes = [0, 0, 0];");
        assert!(
            minimized_v || minimized_bytes,
            "failure must be minimized to a boundary: {msg}"
        );
        assert!(
            !msg.contains("after 0 shrinks"),
            "shrinking happened: {msg}"
        );
    }
}

/// The glob-import surface (`use proptest::prelude::*`).
pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_oneof, proptest, Any, Arbitrary, BoxedStrategy,
        Just, ProptestConfig, Strategy, TestCaseError, TestRng, Union,
    };
}
