//! Minimal, API-compatible stand-in for the `rand` crate, vendored because
//! this workspace builds offline (see `vendor/README.md`).
//!
//! Provides the trait surface the workspace uses: [`RngCore`], the [`Rng`]
//! extension alias, and [`SeedableRng`] with the SplitMix64-based
//! `seed_from_u64` seed expansion.

#![forbid(unsafe_code)]

/// Core random number generation: raw 32/64-bit words and byte fills.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

/// Extension alias over [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {}
impl<T: RngCore> Rng for T {}

/// A generator that can be instantiated from a fixed seed.
pub trait SeedableRng: Sized {
    /// The raw seed type (a byte array).
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Construct from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a 64-bit seed, expanding it with SplitMix64 exactly
    /// like `rand`'s default implementation.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            // SplitMix64 step.
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 += 1;
            self.0
        }
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for b in dest {
                *b = self.next_u64() as u8;
            }
        }
    }
    impl SeedableRng for Counter {
        type Seed = [u8; 8];
        fn from_seed(seed: [u8; 8]) -> Self {
            Counter(u64::from_le_bytes(seed))
        }
    }

    #[test]
    fn seed_from_u64_is_deterministic() {
        let a = Counter::seed_from_u64(42).0;
        let b = Counter::seed_from_u64(42).0;
        assert_eq!(a, b);
        assert_ne!(a, Counter::seed_from_u64(43).0);
    }

    #[test]
    fn rng_alias_applies() {
        fn takes_rng<R: Rng>(r: &mut R) -> u64 {
            r.next_u64()
        }
        assert_eq!(takes_rng(&mut Counter(0)), 1);
    }
}
