//! ChaCha-based RNG for the vendored `rand` stand-in (offline build; see
//! `vendor/README.md`).
//!
//! Implements the real ChaCha block function (D. J. Bernstein) with 8
//! rounds, so the stream is a genuine, well-distributed, platform-stable
//! PRF of the seed — the property `dice-netsim` relies on. The exact stream
//! is *not* bit-identical to the registry `rand_chacha` crate (word order
//! details differ); nothing in this workspace depends on that.

#![forbid(unsafe_code)]

use rand::{RngCore, SeedableRng};

/// A ChaCha RNG with 8 rounds.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// Key words (seed).
    key: [u32; 8],
    /// 64-bit block counter.
    counter: u64,
    /// Current output block.
    block: [u32; 16],
    /// Next word index within `block` (16 = exhausted).
    index: usize,
    /// Partial word left over from `fill_bytes`.
    leftover: u32,
    /// Valid low bytes in `leftover`.
    leftover_len: usize,
}

const CHACHA_CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CHACHA_CONSTANTS);
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        state[14] = 0;
        state[15] = 0;
        let mut working = state;
        for _ in 0..4 {
            // 8 rounds = 4 double-rounds.
            quarter(&mut working, 0, 4, 8, 12);
            quarter(&mut working, 1, 5, 9, 13);
            quarter(&mut working, 2, 6, 10, 14);
            quarter(&mut working, 3, 7, 11, 15);
            quarter(&mut working, 0, 5, 10, 15);
            quarter(&mut working, 1, 6, 11, 12);
            quarter(&mut working, 2, 7, 8, 13);
            quarter(&mut working, 3, 4, 9, 14);
        }
        for i in 0..16 {
            self.block[i] = working[i].wrapping_add(state[i]);
        }
        self.counter = self.counter.wrapping_add(1);
        self.index = 0;
    }

    fn next_word(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let w = self.block[self.index];
        self.index += 1;
        w
    }
}

// Inherent mirrors of the `RngCore` methods, so callers holding a concrete
// `ChaCha8Rng` need no trait import (matching how the workspace uses it).
impl ChaCha8Rng {
    /// Next 32 random bits.
    pub fn next_u32(&mut self) -> u32 {
        self.next_word()
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let lo = self.next_word() as u64;
        let hi = self.next_word() as u64;
        (hi << 32) | lo
    }

    /// Fill `dest` with random bytes.
    pub fn fill_bytes(&mut self, dest: &mut [u8]) {
        for byte in dest.iter_mut() {
            if self.leftover_len == 0 {
                self.leftover = self.next_word();
                self.leftover_len = 4;
            }
            *byte = self.leftover as u8;
            self.leftover >>= 8;
            self.leftover_len -= 1;
        }
    }
}

#[inline]
fn quarter(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: [u8; 32]) -> Self {
        let mut key = [0u32; 8];
        for (i, chunk) in seed.chunks_exact(4).enumerate() {
            key[i] = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        ChaCha8Rng {
            key,
            counter: 0,
            block: [0; 16],
            index: 16,
            leftover: 0,
            leftover_len: 0,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        ChaCha8Rng::next_u32(self)
    }

    fn next_u64(&mut self) -> u64 {
        ChaCha8Rng::next_u64(self)
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        ChaCha8Rng::fill_bytes(self, dest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(7);
        let mut b = ChaCha8Rng::seed_from_u64(7);
        for _ in 0..256 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn seeds_produce_distinct_streams() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let collisions = (0..128).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(collisions, 0);
    }

    #[test]
    fn fill_bytes_matches_word_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(9);
        let mut b = ChaCha8Rng::seed_from_u64(9);
        let mut buf = [0u8; 8];
        a.fill_bytes(&mut buf);
        let w0 = b.next_u32().to_le_bytes();
        let w1 = b.next_u32().to_le_bytes();
        assert_eq!(&buf[..4], &w0);
        assert_eq!(&buf[4..], &w1);
    }

    #[test]
    fn bits_look_balanced() {
        let mut r = ChaCha8Rng::seed_from_u64(3);
        let ones: u32 = (0..1000).map(|_| r.next_u64().count_ones()).sum();
        // 64k bits, expect ~32k ones.
        assert!((30_000..34_000).contains(&ones), "got {ones}");
    }
}
