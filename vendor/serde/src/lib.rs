//! Minimal, API-compatible stand-in for the `serde` crate, vendored because
//! this workspace builds offline (see `vendor/README.md`).
//!
//! Instead of serde's visitor-based zero-copy model, serialization funnels
//! through a small owned data model ([`Value`]): `Serialize::to_value`
//! produces a [`Value`], and backends such as the vendored `serde_json`
//! render it. `Deserialize` exists so `#[derive(Deserialize)]` and
//! `T: Deserialize` bounds compile; nothing in this workspace deserializes
//! through serde yet.

#![forbid(unsafe_code)]

// The derive macros emit `serde::`-prefixed paths; this alias lets them
// resolve inside this crate's own tests too.
extern crate self as serde;

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet, VecDeque};

/// The owned serialization data model.
///
/// Deliberately small: sequences, string-keyed maps, and scalars cover every
/// type this workspace serializes.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Unit / `None`.
    Null,
    /// Booleans.
    Bool(bool),
    /// Unsigned integers.
    U64(u64),
    /// Signed integers.
    I64(i64),
    /// Floating point.
    F64(f64),
    /// Strings (and chars).
    Str(String),
    /// Sequences, tuples, sets, arrays.
    Seq(Vec<Value>),
    /// Maps and struct bodies. Keys are stringified.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Render this value as a map key (JSON requires string keys).
    pub fn as_key(&self) -> String {
        match self {
            Value::Str(s) => s.clone(),
            Value::Bool(b) => b.to_string(),
            Value::U64(n) => n.to_string(),
            Value::I64(n) => n.to_string(),
            Value::F64(n) => n.to_string(),
            other => format!("{other:?}"),
        }
    }
}

/// Types that can serialize themselves into the [`Value`] data model.
pub trait Serialize {
    /// Convert `self` into the owned data model.
    fn to_value(&self) -> Value;
}

/// Marker trait so `#[derive(Deserialize)]` and `T: Deserialize` bounds
/// compile. The vendored stack does not deserialize through serde.
pub trait Deserialize: Sized {}

// ---------------------------------------------------------------------------
// Scalar impls
// ---------------------------------------------------------------------------

macro_rules! ser_uint {
    ($($t:ty),*) => { $(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::U64(*self as u64) }
        }
        impl Deserialize for $t {}
    )* };
}
macro_rules! ser_int {
    ($($t:ty),*) => { $(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::I64(*self as i64) }
        }
        impl Deserialize for $t {}
    )* };
}
ser_uint!(u8, u16, u32, u64, usize);
ser_int!(i8, i16, i32, i64, isize);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(*self as f64)
    }
}
impl Deserialize for f32 {}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}
impl Deserialize for f64 {}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}
impl Deserialize for char {}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}
impl Deserialize for String {}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Null
    }
}
impl Deserialize for () {}

// ---------------------------------------------------------------------------
// Pointer / wrapper impls
// ---------------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}
impl<T: Deserialize> Deserialize for Box<T> {}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {}

// ---------------------------------------------------------------------------
// Sequence impls
// ---------------------------------------------------------------------------

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize, const N: usize> Deserialize for [T; N] {}

impl<T: Serialize> Serialize for VecDeque<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize> Deserialize for VecDeque<T> {}

impl<T: Serialize> Serialize for BTreeSet<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize> Deserialize for BTreeSet<T> {}

impl<T: Serialize> Serialize for HashSet<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize> Deserialize for HashSet<T> {}

// ---------------------------------------------------------------------------
// Map impls (keys stringified through their serialized form)
// ---------------------------------------------------------------------------

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (k.to_value().as_key(), v.to_value()))
                .collect(),
        )
    }
}
impl<K: Deserialize, V: Deserialize> Deserialize for BTreeMap<K, V> {}

impl<K: Serialize, V: Serialize> Serialize for HashMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (k.to_value().as_key(), v.to_value()))
                .collect(),
        )
    }
}
impl<K: Deserialize, V: Deserialize> Deserialize for HashMap<K, V> {}

// ---------------------------------------------------------------------------
// Tuple impls
// ---------------------------------------------------------------------------

macro_rules! ser_tuple {
    ($(($($n:tt $t:ident),+)),+ $(,)?) => { $(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {}
    )+ };
}
ser_tuple!(
    (0 A),
    (0 A, 1 B),
    (0 A, 1 B, 2 C),
    (0 A, 1 B, 2 C, 3 D),
    (0 A, 1 B, 2 C, 3 D, 4 E),
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F),
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_map_to_expected_variants() {
        assert_eq!(7u8.to_value(), Value::U64(7));
        assert_eq!((-3i32).to_value(), Value::I64(-3));
        assert_eq!(true.to_value(), Value::Bool(true));
        assert_eq!("hi".to_string().to_value(), Value::Str("hi".into()));
    }

    #[test]
    fn containers_nest() {
        let v = vec![1u8, 2];
        assert_eq!(v.to_value(), Value::Seq(vec![Value::U64(1), Value::U64(2)]));
        let mut m = BTreeMap::new();
        m.insert("k".to_string(), 1u32);
        assert_eq!(m.to_value(), Value::Map(vec![("k".into(), Value::U64(1))]));
    }

    #[test]
    fn derive_named_struct_round() {
        #[derive(Serialize)]
        struct S {
            a: u8,
            b: String,
        }
        let s = S {
            a: 1,
            b: "x".into(),
        };
        assert_eq!(
            s.to_value(),
            Value::Map(vec![
                ("a".into(), Value::U64(1)),
                ("b".into(), Value::Str("x".into()))
            ])
        );
    }

    #[test]
    fn derive_newtype_and_enum() {
        #[derive(Serialize)]
        struct N(u16);
        assert_eq!(N(9).to_value(), Value::U64(9));

        #[derive(Serialize)]
        enum E {
            Unit,
            Tup(u8, u8),
            Named { x: bool },
        }
        assert_eq!(E::Unit.to_value(), Value::Str("Unit".into()));
        assert_eq!(
            E::Tup(1, 2).to_value(),
            Value::Map(vec![(
                "Tup".into(),
                Value::Seq(vec![Value::U64(1), Value::U64(2)])
            )])
        );
        assert_eq!(
            E::Named { x: true }.to_value(),
            Value::Map(vec![(
                "Named".into(),
                Value::Map(vec![("x".into(), Value::Bool(true))])
            )])
        );
    }
}
