//! Minimal, API-compatible stand-in for the `serde` crate, vendored because
//! this workspace builds offline (see `vendor/README.md`).
//!
//! Instead of serde's visitor-based zero-copy model, both directions funnel
//! through a small owned data model ([`Value`]): `Serialize::to_value`
//! produces a [`Value`] and backends such as the vendored `serde_json`
//! render it; `Deserialize::from_value` consumes a [`Value`] that a backend
//! (e.g. `serde_json::from_str`) parsed from text. `#[derive(Serialize)]`
//! and `#[derive(Deserialize)]` generate both directions so configuration
//! types round-trip through JSON.

#![forbid(unsafe_code)]

// The derive macros emit `serde::`-prefixed paths; this alias lets them
// resolve inside this crate's own tests too.
extern crate self as serde;

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet, VecDeque};

/// The owned serialization data model.
///
/// Deliberately small: sequences, string-keyed maps, and scalars cover every
/// type this workspace serializes.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Unit / `None`.
    Null,
    /// Booleans.
    Bool(bool),
    /// Unsigned integers.
    U64(u64),
    /// Signed integers.
    I64(i64),
    /// Floating point.
    F64(f64),
    /// Strings (and chars).
    Str(String),
    /// Sequences, tuples, sets, arrays.
    Seq(Vec<Value>),
    /// Maps and struct bodies. Keys are stringified.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Render this value as a map key (JSON requires string keys).
    pub fn as_key(&self) -> String {
        match self {
            Value::Str(s) => s.clone(),
            Value::Bool(b) => b.to_string(),
            Value::U64(n) => n.to_string(),
            Value::I64(n) => n.to_string(),
            Value::F64(n) => n.to_string(),
            other => format!("{other:?}"),
        }
    }

    /// Short tag used in deserialization error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::U64(_) | Value::I64(_) | Value::F64(_) => "number",
            Value::Str(_) => "string",
            Value::Seq(_) => "sequence",
            Value::Map(_) => "map",
        }
    }

    /// Look up a field of a [`Value::Map`] body; absent fields (and
    /// non-map values) read as [`Value::Null`] so `Option` fields
    /// deserialize to `None`.
    pub fn field(&self, name: &str) -> &Value {
        static NULL: Value = Value::Null;
        match self {
            Value::Map(entries) => entries
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v)
                .unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

/// Types that can serialize themselves into the [`Value`] data model.
pub trait Serialize {
    /// Convert `self` into the owned data model.
    fn to_value(&self) -> Value;
}

/// Deserialization error: a human-readable path + reason string.
#[derive(Debug, Clone, PartialEq)]
pub struct DeError(pub String);

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "deserialize error: {}", self.0)
    }
}

impl std::error::Error for DeError {}

impl DeError {
    /// An "expected X, found Y" error.
    pub fn expected(what: &str, found: &Value) -> Self {
        DeError(format!("expected {what}, found {}", found.kind()))
    }

    /// Prefix the error path with a field / variant context segment.
    pub fn at(self, segment: &str) -> Self {
        DeError(format!("{segment}: {}", self.0))
    }
}

/// Types that can reconstruct themselves from the [`Value`] data model.
///
/// The inverse of [`Serialize`]: backends parse text into a [`Value`] and
/// hand it here. `from_key` covers map keys, which the data model
/// stringifies; numeric and string types override it to parse the key text.
pub trait Deserialize: Sized {
    /// Reconstruct `Self` from the owned data model.
    fn from_value(v: &Value) -> Result<Self, DeError>;

    /// Reconstruct `Self` from a stringified map key. Default: treat the
    /// key as a string value, which covers `String`-keyed maps; scalar
    /// impls override this with text parsing.
    fn from_key(key: &str) -> Result<Self, DeError> {
        Self::from_value(&Value::Str(key.to_string()))
    }
}

// ---------------------------------------------------------------------------
// Scalar impls
// ---------------------------------------------------------------------------

macro_rules! ser_uint {
    ($($t:ty),*) => { $(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::U64(*self as u64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n = match *v {
                    Value::U64(n) => n,
                    Value::I64(n) if n >= 0 => n as u64,
                    _ => return Err(DeError::expected("unsigned integer", v)),
                };
                <$t>::try_from(n)
                    .map_err(|_| DeError(format!("{n} out of range for {}", stringify!($t))))
            }
            fn from_key(key: &str) -> Result<Self, DeError> {
                key.parse()
                    .map_err(|_| DeError(format!("bad {} key {key:?}", stringify!($t))))
            }
        }
    )* };
}
macro_rules! ser_int {
    ($($t:ty),*) => { $(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::I64(*self as i64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n = match *v {
                    Value::I64(n) => n,
                    Value::U64(n) => {
                        i64::try_from(n).map_err(|_| DeError(format!("{n} overflows i64")))?
                    }
                    _ => return Err(DeError::expected("integer", v)),
                };
                <$t>::try_from(n)
                    .map_err(|_| DeError(format!("{n} out of range for {}", stringify!($t))))
            }
            fn from_key(key: &str) -> Result<Self, DeError> {
                key.parse()
                    .map_err(|_| DeError(format!("bad {} key {key:?}", stringify!($t))))
            }
        }
    )* };
}
ser_uint!(u8, u16, u32, u64, usize);
ser_int!(i8, i16, i32, i64, isize);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(DeError::expected("bool", v)),
        }
    }
    fn from_key(key: &str) -> Result<Self, DeError> {
        key.parse()
            .map_err(|_| DeError(format!("bad bool key {key:?}")))
    }
}

fn float_from(v: &Value) -> Result<f64, DeError> {
    match *v {
        Value::F64(n) => Ok(n),
        Value::U64(n) => Ok(n as f64),
        Value::I64(n) => Ok(n as f64),
        _ => Err(DeError::expected("number", v)),
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(*self as f64)
    }
}
impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        float_from(v).map(|n| n as f32)
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}
impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        float_from(v)
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}
impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            _ => Err(DeError::expected("single-character string", v)),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}
impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(DeError::expected("string", v)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Null
    }
}
impl Deserialize for () {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(()),
            _ => Err(DeError::expected("null", v)),
        }
    }
}

// ---------------------------------------------------------------------------
// Pointer / wrapper impls
// ---------------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}
impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

// ---------------------------------------------------------------------------
// Sequence impls
// ---------------------------------------------------------------------------

fn seq_from(v: &Value) -> Result<&[Value], DeError> {
    match v {
        Value::Seq(xs) => Ok(xs),
        _ => Err(DeError::expected("sequence", v)),
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        seq_from(v)?.iter().map(T::from_value).collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items: Vec<T> = seq_from(v)?
            .iter()
            .map(T::from_value)
            .collect::<Result<_, _>>()?;
        let got = items.len();
        items
            .try_into()
            .map_err(|_| DeError(format!("expected {N}-element array, found {got}")))
    }
}

impl<T: Serialize> Serialize for VecDeque<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize> Deserialize for VecDeque<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        seq_from(v)?.iter().map(T::from_value).collect()
    }
}

impl<T: Serialize> Serialize for BTreeSet<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        seq_from(v)?.iter().map(T::from_value).collect()
    }
}

impl<T: Serialize> Serialize for HashSet<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize + std::hash::Hash + Eq> Deserialize for HashSet<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        seq_from(v)?.iter().map(T::from_value).collect()
    }
}

// ---------------------------------------------------------------------------
// Map impls (keys stringified through their serialized form)
// ---------------------------------------------------------------------------

fn map_from(v: &Value) -> Result<&[(String, Value)], DeError> {
    match v {
        Value::Map(kvs) => Ok(kvs),
        _ => Err(DeError::expected("map", v)),
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (k.to_value().as_key(), v.to_value()))
                .collect(),
        )
    }
}
impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        map_from(v)?
            .iter()
            .map(|(k, v)| Ok((K::from_key(k)?, V::from_value(v)?)))
            .collect()
    }
}

impl<K: Serialize, V: Serialize> Serialize for HashMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (k.to_value().as_key(), v.to_value()))
                .collect(),
        )
    }
}
impl<K: Deserialize + std::hash::Hash + Eq, V: Deserialize> Deserialize for HashMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        map_from(v)?
            .iter()
            .map(|(k, v)| Ok((K::from_key(k)?, V::from_value(v)?)))
            .collect()
    }
}

// ---------------------------------------------------------------------------
// Tuple impls
// ---------------------------------------------------------------------------

macro_rules! ser_tuple {
    ($(($len:expr, $($n:tt $t:ident),+)),+ $(,)?) => { $(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let xs = seq_from(v)?;
                if xs.len() != $len {
                    return Err(DeError(format!(
                        "expected {}-tuple, found {} elements", $len, xs.len()
                    )));
                }
                Ok(($($t::from_value(&xs[$n])?,)+))
            }
        }
    )+ };
}
ser_tuple!(
    (1, 0 A),
    (2, 0 A, 1 B),
    (3, 0 A, 1 B, 2 C),
    (4, 0 A, 1 B, 2 C, 3 D),
    (5, 0 A, 1 B, 2 C, 3 D, 4 E),
    (6, 0 A, 1 B, 2 C, 3 D, 4 E, 5 F),
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_map_to_expected_variants() {
        assert_eq!(7u8.to_value(), Value::U64(7));
        assert_eq!((-3i32).to_value(), Value::I64(-3));
        assert_eq!(true.to_value(), Value::Bool(true));
        assert_eq!("hi".to_string().to_value(), Value::Str("hi".into()));
    }

    #[test]
    fn containers_nest() {
        let v = vec![1u8, 2];
        assert_eq!(v.to_value(), Value::Seq(vec![Value::U64(1), Value::U64(2)]));
        let mut m = BTreeMap::new();
        m.insert("k".to_string(), 1u32);
        assert_eq!(m.to_value(), Value::Map(vec![("k".into(), Value::U64(1))]));
    }

    #[test]
    fn derive_named_struct_round() {
        #[derive(Serialize)]
        struct S {
            a: u8,
            b: String,
        }
        let s = S {
            a: 1,
            b: "x".into(),
        };
        assert_eq!(
            s.to_value(),
            Value::Map(vec![
                ("a".into(), Value::U64(1)),
                ("b".into(), Value::Str("x".into()))
            ])
        );
    }

    #[test]
    fn derive_newtype_and_enum() {
        #[derive(Serialize)]
        struct N(u16);
        assert_eq!(N(9).to_value(), Value::U64(9));

        #[derive(Serialize)]
        enum E {
            Unit,
            Tup(u8, u8),
            Named { x: bool },
        }
        assert_eq!(E::Unit.to_value(), Value::Str("Unit".into()));
        assert_eq!(
            E::Tup(1, 2).to_value(),
            Value::Map(vec![(
                "Tup".into(),
                Value::Seq(vec![Value::U64(1), Value::U64(2)])
            )])
        );
        assert_eq!(
            E::Named { x: true }.to_value(),
            Value::Map(vec![(
                "Named".into(),
                Value::Map(vec![("x".into(), Value::Bool(true))])
            )])
        );
    }

    #[test]
    fn scalars_round_trip_through_from_value() {
        assert_eq!(u8::from_value(&Value::U64(7)), Ok(7));
        assert_eq!(u32::from_value(&Value::I64(7)), Ok(7));
        assert!(u8::from_value(&Value::U64(300)).is_err());
        assert_eq!(i16::from_value(&Value::I64(-2)), Ok(-2));
        assert_eq!(f64::from_value(&Value::U64(3)), Ok(3.0));
        assert_eq!(bool::from_value(&Value::Bool(true)), Ok(true));
        assert_eq!(
            String::from_value(&Value::Str("x".into())),
            Ok("x".to_string())
        );
        assert!(u8::from_value(&Value::Str("7".into())).is_err());
    }

    #[test]
    fn containers_round_trip_through_from_value() {
        let v = vec![1u8, 2, 3];
        assert_eq!(Vec::<u8>::from_value(&v.to_value()), Ok(v));
        let arr = [4u16, 5];
        assert_eq!(<[u16; 2]>::from_value(&arr.to_value()), Ok(arr));
        assert!(<[u16; 3]>::from_value(&arr.to_value()).is_err());
        let mut m = BTreeMap::new();
        m.insert(3u32, "x".to_string());
        assert_eq!(
            BTreeMap::<u32, String>::from_value(&m.to_value()),
            Ok(m),
            "numeric keys parse back through from_key"
        );
        let opt: Option<u8> = None;
        assert_eq!(Option::<u8>::from_value(&opt.to_value()), Ok(None));
        assert_eq!(Option::<u8>::from_value(&Value::U64(3)), Ok(Some(3)));
        let t = (1u8, "y".to_string());
        assert_eq!(<(u8, String)>::from_value(&t.to_value()), Ok(t));
    }

    #[test]
    fn derive_round_trips_both_directions() {
        #[derive(Debug, PartialEq, Serialize, Deserialize)]
        struct Inner(u32);

        #[derive(Debug, PartialEq, Serialize, Deserialize)]
        enum Mode {
            Fast,
            Slow { retries: u8 },
            Pair(u8, u8),
        }

        #[derive(Debug, PartialEq, Serialize, Deserialize)]
        struct Outer {
            id: Inner,
            name: String,
            mode: Mode,
            extras: Vec<u16>,
            note: Option<String>,
        }

        let o = Outer {
            id: Inner(7),
            name: "n".into(),
            mode: Mode::Slow { retries: 3 },
            extras: vec![1, 2],
            note: None,
        };
        assert_eq!(Outer::from_value(&o.to_value()), Ok(o));
        assert_eq!(Mode::from_value(&Mode::Fast.to_value()), Ok(Mode::Fast));
        assert_eq!(
            Mode::from_value(&Mode::Pair(1, 2).to_value()),
            Ok(Mode::Pair(1, 2))
        );
        assert!(Mode::from_value(&Value::Str("Nope".into())).is_err());
    }

    #[test]
    fn missing_required_field_is_an_error_with_path() {
        #[derive(Debug, PartialEq, Serialize, Deserialize)]
        struct P {
            x: u8,
        }
        let err = P::from_value(&Value::Map(vec![])).unwrap_err();
        assert!(err.0.contains("x"), "error names the field: {err}");
    }
}
