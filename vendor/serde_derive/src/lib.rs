//! Derive macros for the vendored `serde` stand-in.
//!
//! `#[derive(Serialize)]` generates an `impl serde::Serialize` that maps the
//! item onto the owned `serde::Value` data model (named struct → `Map`,
//! newtype → inner value, tuple struct/variant → `Seq`, unit variant →
//! `Str`). `#[derive(Deserialize)]` generates the exact inverse
//! (`serde::Deserialize::from_value`), so derived types round-trip through
//! any backend that parses text into the data model (e.g. the vendored
//! `serde_json::from_str`). Missing map fields read as `Null`, which makes
//! `Option` fields default to `None` and required fields error with a
//! `Type.field:`-prefixed path.
//!
//! The input is parsed with a hand-rolled scanner over `proc_macro` token
//! trees — no `syn`/`quote`, because this workspace builds offline with zero
//! registry dependencies. Generic items are rejected (none of the workspace
//! types that derive serde traits are generic).

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// What kind of item body we found.
enum Body {
    /// `struct S;`
    UnitStruct,
    /// `struct S { a: A, b: B }` — field names.
    NamedStruct(Vec<String>),
    /// `struct S(A, B);` — field count.
    TupleStruct(usize),
    /// `enum E { ... }`
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

/// Skip attributes (`#[...]`) and doc comments at the cursor position.
fn skip_attrs(tokens: &[TokenTree], mut i: usize) -> usize {
    while i + 1 < tokens.len() {
        match (&tokens[i], &tokens[i + 1]) {
            (TokenTree::Punct(p), TokenTree::Group(g))
                if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
            {
                i += 2;
            }
            _ => break,
        }
    }
    i
}

/// Skip a visibility qualifier (`pub`, `pub(crate)`, ...) at the cursor.
fn skip_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    if let Some(TokenTree::Ident(id)) = tokens.get(i) {
        if id.to_string() == "pub" {
            i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    i += 1;
                }
            }
        }
    }
    i
}

/// Split a delimited token stream on top-level commas. Commas inside
/// generic argument lists (`BTreeMap<String, Policy>`) are not split
/// points, so angle-bracket depth is tracked; `<`/`>` appearing as
/// punctuation in field position can only be generics.
fn split_commas(stream: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut out = Vec::new();
    let mut cur = Vec::new();
    let mut angle_depth: usize = 0;
    for tt in stream {
        match &tt {
            TokenTree::Punct(p) if p.as_char() == '<' => {
                angle_depth += 1;
                cur.push(tt);
            }
            TokenTree::Punct(p) if p.as_char() == '>' => {
                angle_depth = angle_depth.saturating_sub(1);
                cur.push(tt);
            }
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                out.push(std::mem::take(&mut cur));
            }
            _ => cur.push(tt),
        }
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

/// Parse one field segment (`#[attr] pub name: Type`) to its name.
fn field_name(seg: &[TokenTree]) -> Option<String> {
    let mut i = skip_attrs(seg, 0);
    i = skip_vis(seg, i);
    match seg.get(i) {
        Some(TokenTree::Ident(id)) => Some(id.to_string()),
        _ => None,
    }
}

fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    split_commas(stream)
        .iter()
        .filter(|seg| !seg.is_empty())
        .filter_map(|seg| field_name(seg))
        .collect()
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    split_commas(stream)
        .iter()
        .filter(|seg| !seg.is_empty())
        .count()
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attrs(&tokens, i);
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            Some(_) => {
                i += 1;
                continue;
            }
            None => break,
        };
        i += 1;
        let kind = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let k = VariantKind::Tuple(count_tuple_fields(g.stream()));
                i += 1;
                k
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let k = VariantKind::Named(parse_named_fields(g.stream()));
                i += 1;
                k
            }
            _ => VariantKind::Unit,
        };
        // Skip an explicit discriminant (`= expr`) and the trailing comma.
        while i < tokens.len() {
            if let TokenTree::Punct(p) = &tokens[i] {
                if p.as_char() == ',' {
                    i += 1;
                    break;
                }
            }
            i += 1;
        }
        variants.push(Variant { name, kind });
    }
    variants
}

/// Parse the derive input down to (type name, body shape).
fn parse_item(input: TokenStream) -> (String, Body) {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    // Find the `struct` / `enum` keyword, skipping attrs and visibility.
    let mut is_enum = false;
    loop {
        i = skip_attrs(&tokens, i);
        i = skip_vis(&tokens, i);
        match tokens.get(i) {
            Some(TokenTree::Ident(id)) if id.to_string() == "struct" => break,
            Some(TokenTree::Ident(id)) if id.to_string() == "enum" => {
                is_enum = true;
                break;
            }
            Some(_) => i += 1,
            None => panic!("serde_derive: expected `struct` or `enum`"),
        }
    }
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected type name, found {other:?}"),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            panic!("serde_derive (vendored): generic types are not supported; write the impl by hand for `{name}`");
        }
    }
    if is_enum {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                return (name, Body::Enum(parse_variants(g.stream())));
            }
            other => panic!("serde_derive: malformed enum body {other:?}"),
        }
    }
    // Struct: `;` (unit), `(...)` (tuple), `{...}` (named). A `where` clause
    // cannot appear (generics are rejected above).
    match tokens.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            (name, Body::NamedStruct(parse_named_fields(g.stream())))
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            (name, Body::TupleStruct(count_tuple_fields(g.stream())))
        }
        Some(TokenTree::Punct(p)) if p.as_char() == ';' => (name, Body::UnitStruct),
        other => panic!("serde_derive: malformed struct body {other:?}"),
    }
}

/// `#[derive(Serialize)]`: emit `impl serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let (name, body) = parse_item(input);
    let to_value = match &body {
        Body::UnitStruct => "serde::Value::Null".to_string(),
        Body::NamedStruct(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| format!("({f:?}.to_string(), serde::Serialize::to_value(&self.{f}))"))
                .collect();
            format!("serde::Value::Map(vec![{}])", entries.join(", "))
        }
        Body::TupleStruct(1) => "serde::Serialize::to_value(&self.0)".to_string(),
        Body::TupleStruct(n) => {
            let entries: Vec<String> = (0..*n)
                .map(|k| format!("serde::Serialize::to_value(&self.{k})"))
                .collect();
            format!("serde::Value::Seq(vec![{}])", entries.join(", "))
        }
        Body::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    match &v.kind {
                        VariantKind::Unit => format!(
                            "{name}::{vname} => serde::Value::Str({vname:?}.to_string()),"
                        ),
                        VariantKind::Tuple(1) => format!(
                            "{name}::{vname}(f0) => serde::Value::Map(vec![({vname:?}.to_string(), serde::Serialize::to_value(f0))]),"
                        ),
                        VariantKind::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|k| format!("f{k}")).collect();
                            let vals: Vec<String> = binds
                                .iter()
                                .map(|b| format!("serde::Serialize::to_value({b})"))
                                .collect();
                            format!(
                                "{name}::{vname}({}) => serde::Value::Map(vec![({vname:?}.to_string(), serde::Value::Seq(vec![{}]))]),",
                                binds.join(", "),
                                vals.join(", ")
                            )
                        }
                        VariantKind::Named(fields) => {
                            let vals: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!("({f:?}.to_string(), serde::Serialize::to_value({f}))")
                                })
                                .collect();
                            format!(
                                "{name}::{vname} {{ {} }} => serde::Value::Map(vec![({vname:?}.to_string(), serde::Value::Map(vec![{}]))]),",
                                fields.join(", "),
                                vals.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    let out = format!(
        "impl serde::Serialize for {name} {{\n    fn to_value(&self) -> serde::Value {{ {to_value} }}\n}}"
    );
    out.parse().expect("serde_derive: generated impl parses")
}

/// Codegen for one named-field body (`struct` or enum variant): a struct
/// literal whose fields pull out of `{src}` via `Value::field`.
fn named_fields_literal(path: &str, fields: &[String], src: &str) -> String {
    let inits: Vec<String> = fields
        .iter()
        .map(|f| {
            format!(
                "{f}: serde::Deserialize::from_value({src}.field({f:?})).map_err(|e| e.at(\"{path}.{f}\"))?"
            )
        })
        .collect();
    format!("{path} {{ {} }}", inits.join(", "))
}

/// Codegen for one tuple body of `n` fields pulling out of slice `{xs}`.
fn tuple_fields_literal(path: &str, n: usize, xs: &str) -> String {
    let inits: Vec<String> = (0..n)
        .map(|k| {
            format!("serde::Deserialize::from_value(&{xs}[{k}]).map_err(|e| e.at(\"{path}.{k}\"))?")
        })
        .collect();
    format!("{path}({})", inits.join(", "))
}

/// `#[derive(Deserialize)]`: emit `impl serde::Deserialize` inverting the
/// shape `#[derive(Serialize)]` produces.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let (name, body) = parse_item(input);
    let from_value = match &body {
        Body::UnitStruct => format!(
            "match v {{ serde::Value::Null => Ok({name}), other => Err(serde::DeError::expected(\"null (unit struct {name})\", other)) }}"
        ),
        Body::NamedStruct(fields) => format!(
            "if !matches!(v, serde::Value::Map(_)) {{ return Err(serde::DeError::expected(\"map (struct {name})\", v)); }} Ok({})",
            named_fields_literal(&name, fields, "v")
        ),
        Body::TupleStruct(1) => format!(
            "Ok({name}(serde::Deserialize::from_value(v).map_err(|e| e.at(\"{name}\"))?))"
        ),
        Body::TupleStruct(n) => format!(
            "if let serde::Value::Seq(xs) = v {{ if xs.len() == {n} {{ return Ok({}); }} }} Err(serde::DeError::expected(\"{n}-element sequence (struct {name})\", v))",
            tuple_fields_literal(&name, *n, "xs")
        ),
        Body::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut data_arms = String::new();
            for v in variants {
                let vname = &v.name;
                let path = format!("{name}::{vname}");
                match &v.kind {
                    VariantKind::Unit => {
                        unit_arms.push_str(&format!(
                            "if tag == {vname:?} {{ return Ok({path}); }} "
                        ));
                    }
                    VariantKind::Tuple(1) => {
                        data_arms.push_str(&format!(
                            "if tag == {vname:?} {{ return Ok({path}(serde::Deserialize::from_value(inner).map_err(|e| e.at(\"{path}\"))?)); }} "
                        ));
                    }
                    VariantKind::Tuple(n) => {
                        data_arms.push_str(&format!(
                            "if tag == {vname:?} {{ if let serde::Value::Seq(xs) = inner {{ if xs.len() == {n} {{ return Ok({}); }} }} return Err(serde::DeError::expected(\"{n}-element sequence ({path})\", inner)); }} ",
                            tuple_fields_literal(&path, *n, "xs")
                        ));
                    }
                    VariantKind::Named(fields) => {
                        data_arms.push_str(&format!(
                            "if tag == {vname:?} {{ if !matches!(inner, serde::Value::Map(_)) {{ return Err(serde::DeError::expected(\"map ({path})\", inner)); }} return Ok({}); }} ",
                            named_fields_literal(&path, fields, "inner")
                        ));
                    }
                }
            }
            format!(
                "if let serde::Value::Str(tag) = v {{ \
                     {unit_arms}\
                     return Err(serde::DeError(format!(\"unknown variant {{tag:?}} for {name}\"))); \
                 }} \
                 if let serde::Value::Map(entries) = v {{ \
                     if entries.len() == 1 {{ \
                         let (tag, inner) = &entries[0]; \
                         let _ = inner; \
                         {data_arms}\
                         return Err(serde::DeError(format!(\"unknown variant {{tag:?}} for {name}\"))); \
                     }} \
                 }} \
                 Err(serde::DeError::expected(\"variant of enum {name}\", v))"
            )
        }
    };
    let out = format!(
        "impl serde::Deserialize for {name} {{\n    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {{ {from_value} }}\n}}"
    );
    out.parse().expect("serde_derive: generated impl parses")
}
