//! Minimal, API-compatible stand-in for the `serde_json` crate, vendored
//! because this workspace builds offline (see `vendor/README.md`).
//!
//! Covers the surface this workspace uses: [`Value`], [`Map`], the [`json!`]
//! macro, [`to_string`] / [`to_string_pretty`] over anything implementing the
//! vendored `serde::Serialize`, [`from_str`] into anything implementing the
//! vendored `serde::Deserialize` (a full JSON text parser feeding the owned
//! data model), and `Index`/`PartialEq` conveniences for assertions.

#![forbid(unsafe_code)]

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Float.
    F64(f64),
    /// String.
    String(String),
    /// Array.
    Array(Vec<Value>),
    /// Object (insertion-ordered).
    Object(Map<String, Value>),
}

/// An insertion-ordered string-keyed map, mirroring `serde_json::Map`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Map<K, V> {
    entries: Vec<(K, V)>,
}

impl<K: PartialEq, V> Map<K, V> {
    /// An empty map.
    pub fn new() -> Self {
        Map {
            entries: Vec::new(),
        }
    }

    /// Insert, replacing any existing entry with an equal key.
    pub fn insert(&mut self, key: K, value: V) -> Option<V> {
        for (k, v) in &mut self.entries {
            if *k == key {
                return Some(std::mem::replace(v, value));
            }
        }
        self.entries.push((key, value));
        None
    }

    /// Look up by key.
    pub fn get<Q>(&self, key: &Q) -> Option<&V>
    where
        K: std::borrow::Borrow<Q>,
        Q: PartialEq + ?Sized,
    {
        self.entries
            .iter()
            .find(|(k, _)| k.borrow() == key)
            .map(|(_, v)| v)
    }

    /// Iterate entries in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&K, &V)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

impl<K: PartialEq, V> FromIterator<(K, V)> for Map<K, V> {
    fn from_iter<I: IntoIterator<Item = (K, V)>>(iter: I) -> Self {
        let mut m = Map::new();
        for (k, v) in iter {
            m.insert(k, v);
        }
        m
    }
}

// ---------------------------------------------------------------------------
// Conversions into Value
// ---------------------------------------------------------------------------

/// By-reference conversion into [`Value`], used by the [`json!`] macro so
/// that field accesses like `self.title` are not moved out of `&self`.
pub trait ToJsonValue {
    /// Produce the JSON value for `self`.
    fn to_json_value(&self) -> Value;
}

impl ToJsonValue for Value {
    fn to_json_value(&self) -> Value {
        self.clone()
    }
}
impl ToJsonValue for String {
    fn to_json_value(&self) -> Value {
        Value::String(self.clone())
    }
}
impl ToJsonValue for str {
    fn to_json_value(&self) -> Value {
        Value::String(self.to_string())
    }
}
impl ToJsonValue for bool {
    fn to_json_value(&self) -> Value {
        Value::Bool(*self)
    }
}
macro_rules! to_json_uint {
    ($($t:ty),*) => { $(impl ToJsonValue for $t {
        fn to_json_value(&self) -> Value { Value::U64(*self as u64) }
    })* };
}
macro_rules! to_json_int {
    ($($t:ty),*) => { $(impl ToJsonValue for $t {
        fn to_json_value(&self) -> Value { Value::I64(*self as i64) }
    })* };
}
to_json_uint!(u8, u16, u32, u64, usize);
to_json_int!(i8, i16, i32, i64, isize);
impl ToJsonValue for f64 {
    fn to_json_value(&self) -> Value {
        Value::F64(*self)
    }
}
impl<T: ToJsonValue, const N: usize> ToJsonValue for [T; N] {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(ToJsonValue::to_json_value).collect())
    }
}
impl<T: ToJsonValue> ToJsonValue for Vec<T> {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(ToJsonValue::to_json_value).collect())
    }
}
impl<T: ToJsonValue> ToJsonValue for Option<T> {
    fn to_json_value(&self) -> Value {
        match self {
            Some(v) => v.to_json_value(),
            None => Value::Null,
        }
    }
}
impl ToJsonValue for Map<String, Value> {
    fn to_json_value(&self) -> Value {
        Value::Object(self.clone())
    }
}
impl<T: ToJsonValue + ?Sized> ToJsonValue for &T {
    fn to_json_value(&self) -> Value {
        (**self).to_json_value()
    }
}

/// Build a [`Value`] from literal-ish syntax, like `serde_json::json!`.
///
/// Supports `null`, arrays of expressions, objects with string-literal keys
/// and expression values, and bare expressions (anything implementing
/// [`ToJsonValue`]). Nest objects by nesting `json!` calls.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($elem:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $($crate::ToJsonValue::to_json_value(&$elem)),* ])
    };
    ({ $($key:literal : $val:expr),* $(,)? }) => {{
        let mut map = $crate::Map::new();
        $( map.insert($key.to_string(), $crate::ToJsonValue::to_json_value(&$val)); )*
        $crate::Value::Object(map)
    }};
    ($other:expr) => { $crate::ToJsonValue::to_json_value(&$other) };
}

// ---------------------------------------------------------------------------
// Indexing and comparison sugar
// ---------------------------------------------------------------------------

static NULL: Value = Value::Null;

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        match self {
            Value::Object(m) => m.get(key).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        match self {
            Value::Array(a) => a.get(idx).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        matches!(self, Value::String(s) if s == other)
    }
}

impl PartialEq<Value> for &str {
    fn eq(&self, other: &Value) -> bool {
        other == self
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        matches!(self, Value::String(s) if s == other)
    }
}

// ---------------------------------------------------------------------------
// Serialization to text
// ---------------------------------------------------------------------------

/// Error type for serialization. The vendored model is infallible in
/// practice; this exists for API compatibility.
#[derive(Debug)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde_json error: {}", self.0)
    }
}

impl std::error::Error for Error {}

fn from_ser(v: &serde::Value) -> Value {
    match v {
        serde::Value::Null => Value::Null,
        serde::Value::Bool(b) => Value::Bool(*b),
        serde::Value::U64(n) => Value::U64(*n),
        serde::Value::I64(n) => Value::I64(*n),
        serde::Value::F64(n) => Value::F64(*n),
        serde::Value::Str(s) => Value::String(s.clone()),
        serde::Value::Seq(xs) => Value::Array(xs.iter().map(from_ser).collect()),
        serde::Value::Map(kvs) => {
            Value::Object(kvs.iter().map(|(k, v)| (k.clone(), from_ser(v))).collect())
        }
    }
}

impl serde::Serialize for Value {
    fn to_value(&self) -> serde::Value {
        match self {
            Value::Null => serde::Value::Null,
            Value::Bool(b) => serde::Value::Bool(*b),
            Value::U64(n) => serde::Value::U64(*n),
            Value::I64(n) => serde::Value::I64(*n),
            Value::F64(n) => serde::Value::F64(*n),
            Value::String(s) => serde::Value::Str(s.clone()),
            Value::Array(xs) => {
                serde::Value::Seq(xs.iter().map(serde::Serialize::to_value).collect())
            }
            Value::Object(m) => serde::Value::Map(
                m.iter()
                    .map(|(k, v)| (k.clone(), serde::Serialize::to_value(v)))
                    .collect(),
            ),
        }
    }
}

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn render(v: &Value, pretty: bool, indent: usize, out: &mut String) {
    let pad = |n: usize, out: &mut String| {
        if pretty {
            out.push('\n');
            out.push_str(&"  ".repeat(n));
        }
    };
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(n) => out.push_str(&n.to_string()),
        Value::String(s) => escape_into(s, out),
        Value::Array(xs) => {
            if xs.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, x) in xs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                pad(indent + 1, out);
                render(x, pretty, indent + 1, out);
            }
            pad(indent, out);
            out.push(']');
        }
        Value::Object(m) => {
            if m.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, x)) in m.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                pad(indent + 1, out);
                escape_into(k, out);
                out.push(':');
                if pretty {
                    out.push(' ');
                }
                render(x, pretty, indent + 1, out);
            }
            pad(indent, out);
            out.push('}');
        }
    }
}

/// Serialize any `serde::Serialize` value to compact JSON.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let v = from_ser(&value.to_value());
    let mut out = String::new();
    render(&v, false, 0, &mut out);
    Ok(out)
}

/// Serialize any `serde::Serialize` value to pretty-printed JSON.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let v = from_ser(&value.to_value());
    let mut out = String::new();
    render(&v, true, 0, &mut out);
    Ok(out)
}

// ---------------------------------------------------------------------------
// Deserialization from text
// ---------------------------------------------------------------------------

impl serde::Deserialize for Value {
    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        Ok(from_ser(v))
    }
}

/// Recursive-descent JSON parser over the input bytes.
struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Parser {
            bytes: s.as_bytes(),
            pos: 0,
        }
    }

    fn err(&self, msg: &str) -> Error {
        Error(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, lit: &str) -> Result<(), Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(self.err(&format!("expected `{lit}`")))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.eat("null").map(|_| Value::Null),
            Some(b't') => self.eat("true").map(|_| Value::Bool(true)),
            Some(b'f') => self.eat("false").map(|_| Value::Bool(false)),
            Some(b'"') => self.string().map(Value::String),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            Some(c) => Err(self.err(&format!("unexpected byte {:?}", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.eat("\"")?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: expect a low surrogate.
                                self.eat("\\u")?;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            match char::from_u32(code) {
                                Some(c) => out.push(c),
                                None => return Err(self.err("invalid \\u escape")),
                            }
                        }
                        other => {
                            return Err(self.err(&format!("invalid escape {:?}", other as char)))
                        }
                    }
                }
                // Multi-byte UTF-8: copy the full sequence verbatim.
                _ if b < 0x80 => out.push(b as char),
                _ => {
                    let start = self.pos - 1;
                    while self.peek().is_some_and(|c| c & 0xC0 == 0x80) {
                        self.pos += 1;
                    }
                    let s = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    out.push_str(s);
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        let hex = self
            .bytes
            .get(self.pos..end)
            .and_then(|h| std::str::from_utf8(h).ok())
            .ok_or_else(|| self.err("truncated \\u escape"))?;
        let code = u32::from_str_radix(hex, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos = end;
        Ok(code)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !is_float {
            if text.starts_with('-') {
                // Parse the signed text directly: parsing the digits as a
                // positive i64 and negating would overflow on i64::MIN.
                if let Ok(n) = text.parse::<i64>() {
                    return Ok(Value::I64(n));
                }
            } else if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| self.err(&format!("invalid number `{text}`")))
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.eat("[")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.eat("{")?;
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(":")?;
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }
}

/// Parse JSON text into a [`Value`].
pub fn parse_value(s: &str) -> Result<Value, Error> {
    let mut p = Parser::new(s);
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(v)
}

/// Deserialize any `serde::Deserialize` type from JSON text.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    let v = parse_value(s)?;
    T::from_value(&serde::Serialize::to_value(&v)).map_err(|e| Error(e.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_macro_shapes() {
        let rows = vec![json!({ "k": "v" })];
        let j = json!({ "title": "T", "rows": rows, "n": 3u32, "none": json!(null) });
        assert_eq!(j["title"], "T");
        assert_eq!(j["rows"][0]["k"], "v");
        assert_eq!(j["n"], Value::U64(3));
        assert_eq!(j["none"], Value::Null);
        assert_eq!(j["missing"], Value::Null);
    }

    #[test]
    fn to_string_escapes_and_nests() {
        let v = json!({ "a": "x\"y", "b": [1u8, 2u8] });
        assert_eq!(to_string(&v).unwrap(), r#"{"a":"x\"y","b":[1,2]}"#);
    }

    #[test]
    fn pretty_has_indentation() {
        let v = json!({ "a": 1u8 });
        let s = to_string_pretty(&v).unwrap();
        assert!(s.contains("\n  \"a\": 1"));
    }

    #[test]
    fn from_str_parses_scalars_and_nesting() {
        assert_eq!(parse_value("null").unwrap(), Value::Null);
        assert_eq!(parse_value(" true ").unwrap(), Value::Bool(true));
        assert_eq!(parse_value("42").unwrap(), Value::U64(42));
        assert_eq!(parse_value("-7").unwrap(), Value::I64(-7));
        // Regression: i64::MIN has no positive i64 counterpart, so the
        // parser must not negate the digit text after parsing it.
        assert_eq!(
            parse_value("-9223372036854775808").unwrap(),
            Value::I64(i64::MIN)
        );
        assert_eq!(
            parse_value(&i64::MAX.to_string()).unwrap(),
            Value::U64(i64::MAX as u64)
        );
        assert_eq!(parse_value("2.5").unwrap(), Value::F64(2.5));
        assert_eq!(parse_value("1e3").unwrap(), Value::F64(1000.0));
        assert_eq!(
            parse_value(r#""a\nbAé""#).unwrap(),
            Value::String("a\nbA\u{e9}".into())
        );
        let v = parse_value(r#"{ "xs": [1, -2, {"k": "v"}], "b": false }"#).unwrap();
        assert_eq!(v["xs"][0], Value::U64(1));
        assert_eq!(v["xs"][1], Value::I64(-2));
        assert_eq!(v["xs"][2]["k"], "v");
        assert_eq!(v["b"], Value::Bool(false));
    }

    #[test]
    fn from_str_rejects_malformed_input() {
        assert!(parse_value("").is_err());
        assert!(parse_value("{").is_err());
        assert!(parse_value("[1,]").is_err());
        assert!(parse_value("\"unterminated").is_err());
        assert!(parse_value("1 2").is_err(), "trailing content rejected");
        assert!(parse_value("nul").is_err());
    }

    #[test]
    fn from_str_round_trips_derived_types() {
        #[derive(Debug, PartialEq, serde::Serialize, serde::Deserialize)]
        struct Nested {
            id: u32,
            label: String,
        }
        #[derive(Debug, PartialEq, serde::Serialize, serde::Deserialize)]
        struct Config {
            name: String,
            limit: usize,
            ratio: f64,
            inner: Nested,
            tags: Vec<String>,
            opt: Option<u8>,
        }
        let cfg = Config {
            name: "c".into(),
            limit: 10,
            ratio: 0.5,
            inner: Nested {
                id: 3,
                label: "x\"y".into(),
            },
            tags: vec!["a".into(), "b".into()],
            opt: None,
        };
        let text = to_string(&cfg).unwrap();
        let back: Config = from_str(&text).unwrap();
        assert_eq!(back, cfg);
        // Missing optional fields deserialize to None; missing required
        // fields error with a field path.
        let partial: Config =
            from_str(r#"{"name":"n","limit":1,"ratio":2,"inner":{"id":1,"label":"l"},"tags":[]}"#)
                .unwrap();
        assert_eq!(partial.opt, None);
        let err = from_str::<Config>(r#"{"name":"n"}"#).unwrap_err();
        assert!(err.to_string().contains("limit"), "{err}");
    }

    #[test]
    fn from_str_into_json_value() {
        let v: Value = from_str(r#"{"a": [1, 2]}"#).unwrap();
        assert_eq!(v["a"][1], Value::U64(2));
    }

    #[test]
    fn derived_types_serialize() {
        #[derive(serde::Serialize)]
        struct P {
            x: u8,
            tag: String,
        }
        let s = to_string(&P {
            x: 5,
            tag: "t".into(),
        })
        .unwrap();
        assert_eq!(s, r#"{"x":5,"tag":"t"}"#);
    }
}
